r"""Quantifying the cost of tolerance fine-tuning (paper Sections I/III).

The paper argues that with numerical QMDDs "an application-specific
trade-off between accuracy and compactness needs to be conducted ...
[requiring] a time-consuming fine-tuning of the corresponding
parameters ... on a case-by-case basis", and that "it is not guaranteed
that the desired accuracy or compactness can be achieved at all".  This
module turns that argument into a measurable experiment:

* :func:`tune_epsilon` plays the engineer: sweep a tolerance grid,
  fully simulating the workload for each candidate, until one meets
  both an accuracy target and a compactness budget -- and report how
  many full simulations (and how much CPU time) the search consumed,
  or that *no* tolerance works;
* :func:`error_growth` fits the per-gate error series, checking the
  paper's Section V-A observation that for sufficiently small ``eps``
  the error grows linearly with the number of applied gates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.api import RunRequest, RunResult, SimulatorConfig, run, run_batch
from repro.circuits.circuit import Circuit
from repro.errors import SimulationError
from repro.sim.accuracy import state_error

__all__ = ["TuningTrial", "TuningReport", "tune_epsilon", "error_growth"]

#: The default tolerance grid an engineer might scan (coarse to fine).
DEFAULT_GRID: Tuple[float, ...] = (
    1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 1e-12, 1e-14, 0.0
)


@dataclass(frozen=True)
class TuningTrial:
    """One full simulation at one candidate tolerance."""

    eps: float
    final_error: float
    peak_nodes: int
    seconds: float
    meets_accuracy: bool
    meets_compactness: bool


@dataclass
class TuningReport:
    """Outcome of the tolerance search."""

    circuit_name: str
    error_target: float
    node_budget: int
    trials: List[TuningTrial] = field(default_factory=list)
    chosen_eps: Optional[float] = None
    total_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.chosen_eps is not None

    @property
    def num_trials(self) -> int:
        return len(self.trials)


def _trial_from_result(
    result: RunResult,
    reference_vector: np.ndarray,
    error_target: float,
    node_budget: int,
) -> TuningTrial:
    manager, state = result.restore_state()
    error = state_error(manager.to_statevector(state), reference_vector)
    return TuningTrial(
        eps=result.config.eps,
        final_error=error,
        peak_nodes=result.trace.peak_node_count,
        seconds=result.seconds,
        meets_accuracy=error <= error_target,
        meets_compactness=result.trace.peak_node_count <= node_budget,
    )


def tune_epsilon(
    circuit: Circuit,
    error_target: float = 1e-6,
    node_budget: Optional[int] = None,
    grid: Sequence[float] = DEFAULT_GRID,
    stop_at_first: bool = True,
    workers: int = 1,
) -> TuningReport:
    """Search the tolerance grid for an ``eps`` meeting both targets.

    ``node_budget`` defaults to twice the algebraic peak size (i.e.
    "be roughly as compact as the exact representation").  Every trial
    is a *complete* simulation -- that is the point: the fine-tuning the
    paper criticises costs one full run per candidate.

    With ``workers=1`` (default) candidates are tried in grid order and
    the search stops at the first success (when ``stop_at_first``).
    With ``workers>1`` the whole grid is dispatched at once through
    :func:`repro.api.run_batch` -- more total work, less wall-clock --
    and ``chosen_eps`` is still the first grid entry meeting both
    targets.
    """
    reference = run(RunRequest(circuit, SimulatorConfig(system="algebraic")))
    reference_manager, reference_state = reference.restore_state()
    reference_vector = reference_manager.to_statevector(reference_state)
    if node_budget is None:
        node_budget = 2 * reference.trace.peak_node_count
    report = TuningReport(
        circuit_name=circuit.name,
        error_target=error_target,
        node_budget=node_budget,
    )
    started = time.perf_counter()
    if workers <= 1:
        for eps in grid:
            result = run(
                RunRequest(circuit, SimulatorConfig(system="numeric", eps=eps))
            )
            trial = _trial_from_result(result, reference_vector, error_target, node_budget)
            report.trials.append(trial)
            if trial.meets_accuracy and trial.meets_compactness:
                report.chosen_eps = eps
                if stop_at_first:
                    break
    else:
        requests = [
            RunRequest(circuit, SimulatorConfig(system="numeric", eps=eps))
            for eps in grid
        ]
        batch = run_batch(requests, workers=workers)
        if batch.failures:
            first = batch.failures[0]
            raise SimulationError(
                f"tuning trial {first.label!r} failed: "
                f"[{first.error_type}] {first.message}"
            )
        for result in batch.completed:
            trial = _trial_from_result(result, reference_vector, error_target, node_budget)
            report.trials.append(trial)
            if (
                report.chosen_eps is None
                and trial.meets_accuracy
                and trial.meets_compactness
            ):
                report.chosen_eps = trial.eps
    report.total_seconds = time.perf_counter() - started
    return report


def error_growth(errors: Sequence[Optional[float]]) -> Tuple[float, float]:
    """Least-squares linear fit ``error ~ slope * gate_index``.

    Returns ``(slope, r_squared)``.  Section V-A: "for a sufficiently
    small tolerance value eps, the error indeed scales linearly with the
    number of applied gates" -- a high ``r_squared`` with positive slope
    on the ``eps = 0`` series confirms it.
    """
    cleaned = [(index, value) for index, value in enumerate(errors) if value is not None]
    if len(cleaned) < 2:
        raise ValueError("need at least two error samples")
    xs = np.array([index for index, _ in cleaned], dtype=float)
    ys = np.array([value for _, value in cleaned], dtype=float)
    slope, intercept = np.polyfit(xs, ys, 1)
    predicted = slope * xs + intercept
    total = float(np.sum((ys - ys.mean()) ** 2))
    residual = float(np.sum((ys - predicted) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return (float(slope), r_squared)
