r"""Quantifying the cost of tolerance fine-tuning (paper Sections I/III).

The paper argues that with numerical QMDDs "an application-specific
trade-off between accuracy and compactness needs to be conducted ...
[requiring] a time-consuming fine-tuning of the corresponding
parameters ... on a case-by-case basis", and that "it is not guaranteed
that the desired accuracy or compactness can be achieved at all".  This
module turns that argument into a measurable experiment:

* :func:`tune_epsilon` plays the engineer: sweep a tolerance grid,
  fully simulating the workload for each candidate, until one meets
  both an accuracy target and a compactness budget -- and report how
  many full simulations (and how much CPU time) the search consumed,
  or that *no* tolerance works;
* :func:`error_growth` fits the per-gate error series, checking the
  paper's Section V-A observation that for sufficiently small ``eps``
  the error grows linearly with the number of applied gates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.sim.accuracy import state_error
from repro.sim.simulator import Simulator

__all__ = ["TuningTrial", "TuningReport", "tune_epsilon", "error_growth"]

#: The default tolerance grid an engineer might scan (coarse to fine).
DEFAULT_GRID: Tuple[float, ...] = (
    1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 1e-12, 1e-14, 0.0
)


@dataclass(frozen=True)
class TuningTrial:
    """One full simulation at one candidate tolerance."""

    eps: float
    final_error: float
    peak_nodes: int
    seconds: float
    meets_accuracy: bool
    meets_compactness: bool


@dataclass
class TuningReport:
    """Outcome of the tolerance search."""

    circuit_name: str
    error_target: float
    node_budget: int
    trials: List[TuningTrial] = field(default_factory=list)
    chosen_eps: Optional[float] = None
    total_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.chosen_eps is not None

    @property
    def num_trials(self) -> int:
        return len(self.trials)


def tune_epsilon(
    circuit: Circuit,
    error_target: float = 1e-6,
    node_budget: Optional[int] = None,
    grid: Sequence[float] = DEFAULT_GRID,
    stop_at_first: bool = True,
) -> TuningReport:
    """Search the tolerance grid for an ``eps`` meeting both targets.

    ``node_budget`` defaults to twice the algebraic peak size (i.e.
    "be roughly as compact as the exact representation").  Every trial
    is a *complete* simulation -- that is the point: the fine-tuning the
    paper criticises costs one full run per candidate.
    """
    reference_manager = algebraic_manager(circuit.num_qubits)
    reference_states: List[np.ndarray] = []
    reference_run = Simulator(reference_manager).run(circuit)
    reference_vector = reference_manager.to_statevector(reference_run.state)
    if node_budget is None:
        node_budget = 2 * reference_run.trace.peak_node_count
    report = TuningReport(
        circuit_name=circuit.name,
        error_target=error_target,
        node_budget=node_budget,
    )
    started = time.perf_counter()
    for eps in grid:
        manager = numeric_manager(circuit.num_qubits, eps=eps)
        trial_started = time.perf_counter()
        run = Simulator(manager).run(circuit)
        seconds = time.perf_counter() - trial_started
        error = state_error(manager.to_statevector(run.state), reference_vector)
        trial = TuningTrial(
            eps=eps,
            final_error=error,
            peak_nodes=run.trace.peak_node_count,
            seconds=seconds,
            meets_accuracy=error <= error_target,
            meets_compactness=run.trace.peak_node_count <= node_budget,
        )
        report.trials.append(trial)
        if trial.meets_accuracy and trial.meets_compactness:
            report.chosen_eps = eps
            if stop_at_first:
                break
    report.total_seconds = time.perf_counter() - started
    return report


def error_growth(errors: Sequence[Optional[float]]) -> Tuple[float, float]:
    """Least-squares linear fit ``error ~ slope * gate_index``.

    Returns ``(slope, r_squared)``.  Section V-A: "for a sufficiently
    small tolerance value eps, the error indeed scales linearly with the
    number of applied gates" -- a high ``r_squared`` with positive slope
    on the ``eps = 0`` series confirms it.
    """
    cleaned = [(index, value) for index, value in enumerate(errors) if value is not None]
    if len(cleaned) < 2:
        raise ValueError("need at least two error samples")
    xs = np.array([index for index, _ in cleaned], dtype=float)
    ys = np.array([value for _, value in cleaned], dtype=float)
    slope, intercept = np.polyfit(xs, ys, 1)
    predicted = slope * xs + intercept
    total = float(np.sum((ys - ys.mean()) ** 2))
    residual = float(np.sum((ys - predicted) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return (float(slope), r_squared)
