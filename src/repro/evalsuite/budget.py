r"""Approximation-budget ablation for the GSE pipeline (Fig. 5 context).

The paper attributes the algebraic GSE overhead to the Clifford+T
approximation: more accurate rotation approximations mean longer
``{H, T}`` words, larger denominator exponents and wider integer
coefficients.  This ablation sweeps the word-search budget and records
both sides of that trade: the rotation approximation error (accuracy of
the *compiled circuit* against the ideal rotations) versus the T-count,
bit-width and algebraic simulation time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.algorithms.gse import gse_circuit, gse_rotation_circuit
from repro.api import SimulatorConfig
from repro.sim.statevector import StatevectorSimulator

__all__ = ["BudgetRow", "approximation_budget_sweep"]


@dataclass(frozen=True)
class BudgetRow:
    """GSE pipeline metrics for one word-search budget."""

    max_words: int
    gate_count: int
    t_count: int
    overlap_with_ideal: float
    max_bit_width: int
    algebraic_seconds: float


def approximation_budget_sweep(
    num_sites: int = 2,
    precision_bits: int = 2,
    budgets: Sequence[int] = (500, 2000, 8000),
) -> List[BudgetRow]:
    """Sweep the Clifford+T search budget on the GSE benchmark."""
    ideal = gse_rotation_circuit(num_sites=num_sites, precision_bits=precision_bits)
    ideal_state = StatevectorSimulator(ideal.num_qubits).run(ideal)
    rows: List[BudgetRow] = []
    for budget in budgets:
        compiled = gse_circuit(
            num_sites=num_sites, precision_bits=precision_bits, max_words=budget
        )
        started = time.perf_counter()
        result = (
            SimulatorConfig(system="algebraic", record_bit_widths=True)
            .create_simulator(compiled.num_qubits)
            .run(compiled)
        )
        seconds = time.perf_counter() - started
        compiled_state = result.final_amplitudes()
        overlap = float(abs(np.vdot(ideal_state, compiled_state)))
        rows.append(
            BudgetRow(
                max_words=budget,
                gate_count=len(compiled),
                t_count=compiled.t_count(),
                overlap_with_ideal=overlap,
                max_bit_width=max(
                    step.max_bit_width for step in result.trace.steps
                ),
                algebraic_seconds=seconds,
            )
        )
    return rows
