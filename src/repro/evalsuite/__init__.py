"""Evaluation harness regenerating the paper's figures (Section V)."""

from repro.evalsuite.ablation import AblationRow, run_normalization_ablation
from repro.evalsuite.experiments import (
    fig2_gse_size,
    fig3_grover,
    fig4_bwt,
    fig5_gse,
    shape_checks,
)
from repro.evalsuite.reporting import (
    format_table,
    render_series,
    render_summary,
    sample_indices,
)
from repro.evalsuite.budget import BudgetRow, approximation_budget_sweep
from repro.evalsuite.instability import InstabilityReport, analyze_error_series
from repro.evalsuite.precision import PrecisionRow, precision_floor_experiment
from repro.evalsuite.scaling import ScalingRow, grover_scaling
from repro.evalsuite.verification_study import (
    VerificationRow,
    make_pairs,
    verification_reliability,
)
from repro.evalsuite.tradeoff import DEFAULT_EPSILONS, TradeoffResult, run_tradeoff
from repro.evalsuite.tuning import (
    TuningReport,
    TuningTrial,
    error_growth,
    tune_epsilon,
)

__all__ = [
    "BudgetRow",
    "InstabilityReport",
    "PrecisionRow",
    "ScalingRow",
    "VerificationRow",
    "analyze_error_series",
    "approximation_budget_sweep",
    "make_pairs",
    "verification_reliability",
    "precision_floor_experiment",
    "TuningReport",
    "TuningTrial",
    "error_growth",
    "grover_scaling",
    "tune_epsilon",
    "AblationRow",
    "DEFAULT_EPSILONS",
    "TradeoffResult",
    "fig2_gse_size",
    "fig3_grover",
    "fig4_bwt",
    "fig5_gse",
    "format_table",
    "render_series",
    "render_summary",
    "run_normalization_ablation",
    "run_tradeoff",
    "sample_indices",
    "shape_checks",
]
