r"""Quantum gate definitions with exact and numeric matrices.

Every gate carries its 2x2 base matrix twice:

* ``exact`` -- the entries as :class:`~repro.rings.domega.DOmega` values,
  available exactly when the gate is a Clifford+T-expressible operation
  (entries in ``D[omega]``, Giles/Selinger [8] as cited in the paper);
* ``matrix`` -- IEEE-754 complex entries, always available.

The algebraic number systems consume ``exact`` and raise on gates that
only have a numeric matrix (arbitrary rotations); those must first be
compiled to Clifford+T via :mod:`repro.approx` -- mirroring how the
paper preprocessed the GSE benchmark with Quipper.

Phase conventions: ``T = diag(1, omega)``, ``S = T^2``, ``Z = S^2``
exactly as in the paper's Example 2.  ``P(theta) = diag(1, e^{i theta})``
is exact whenever ``theta`` is a multiple of ``pi/4``; the rotation
gates ``RX/RY/RZ`` carry the usual ``e^{-i theta/2}`` convention and are
numeric-only (their global phase ``e^{i pi/8}`` for ``theta = pi/4``
lies outside ``D[omega]``).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.rings.domega import DOmega

__all__ = [
    "GateDef",
    "H",
    "X",
    "Y",
    "Z",
    "S",
    "SDG",
    "T",
    "TDG",
    "SQRT_X",
    "identity_gate",
    "phase_gate",
    "rx_gate",
    "ry_gate",
    "rz_gate",
    "u_gate",
    "STANDARD_GATES",
]

_INV_SQRT2 = 1 / math.sqrt(2)


@dataclass(frozen=True)
class GateDef:
    """An (uncontrolled) single-qubit gate.

    Attributes
    ----------
    name:
        Lower-case identifier, also used for QASM serialisation.
    matrix:
        Row-major numeric entries ``(u00, u01, u10, u11)``.
    exact:
        The same entries in ``D[omega]``, or ``None`` for gates outside
        the Clifford+T-exact set.
    params:
        Real gate parameters (rotation angles), for display/QASM.
    """

    name: str
    matrix: Tuple[complex, complex, complex, complex]
    exact: Optional[Tuple[DOmega, DOmega, DOmega, DOmega]] = None
    params: Tuple[float, ...] = ()

    @property
    def is_exactly_representable(self) -> bool:
        """True iff the gate is Clifford+T-exact (D[omega] entries)."""
        return self.exact is not None

    def dagger(self) -> "GateDef":
        """The adjoint gate (conjugate transpose)."""
        u00, u01, u10, u11 = self.matrix
        matrix = (
            u00.conjugate(),
            u10.conjugate(),
            u01.conjugate(),
            u11.conjugate(),
        )
        exact = None
        if self.exact is not None:
            e00, e01, e10, e11 = self.exact
            exact = (e00.conj(), e10.conj(), e01.conj(), e11.conj())
        params = tuple(-p for p in self.params)
        if self.name in ("p", "rx", "ry", "rz"):
            # Rotation families are closed under adjoints: the dagger is
            # the same gate with the negated angle.
            name = self.name
        elif matrix == self.matrix:
            name = self.name  # self-adjoint gates keep their name
        elif self.name.endswith("dg"):
            name = self.name[:-2]
        else:
            name = self.name + "dg"
        return GateDef(name=name, matrix=matrix, exact=exact, params=params)

    def is_unitary(self, tolerance: float = 1e-9) -> bool:
        """Numeric unitarity check ``U U^dagger = I``."""
        u00, u01, u10, u11 = self.matrix
        rows = (
            abs(u00) ** 2 + abs(u01) ** 2,
            abs(u10) ** 2 + abs(u11) ** 2,
        )
        cross = u00 * u10.conjugate() + u01 * u11.conjugate()
        return (
            abs(rows[0] - 1) < tolerance
            and abs(rows[1] - 1) < tolerance
            and abs(cross) < tolerance
        )

    def __str__(self) -> str:
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({args})"
        return self.name


def _exact(a, b, c, d) -> Tuple[DOmega, DOmega, DOmega, DOmega]:
    return (a, b, c, d)


_ONE = DOmega.one()
_ZERO = DOmega.zero()
_MINUS_ONE = DOmega.from_int(-1)
_I = DOmega.imag_unit()
_MINUS_I = -DOmega.imag_unit()
_INV_SQRT2_EXACT = DOmega.one_over_sqrt2()
_OMEGA = DOmega.omega_power(1)
_OMEGA_CONJ = DOmega.omega_power(7)


#: Hadamard (paper Example 2).
H = GateDef(
    name="h",
    matrix=(_INV_SQRT2, _INV_SQRT2, _INV_SQRT2, -_INV_SQRT2),
    exact=_exact(_INV_SQRT2_EXACT, _INV_SQRT2_EXACT, _INV_SQRT2_EXACT, -_INV_SQRT2_EXACT),
)

#: NOT / Pauli-X (paper Example 2).
X = GateDef(name="x", matrix=(0, 1, 1, 0), exact=_exact(_ZERO, _ONE, _ONE, _ZERO))

#: Pauli-Y.
Y = GateDef(name="y", matrix=(0, -1j, 1j, 0), exact=_exact(_ZERO, _MINUS_I, _I, _ZERO))

#: Pauli-Z = S^2 (paper Example 2).
Z = GateDef(name="z", matrix=(1, 0, 0, -1), exact=_exact(_ONE, _ZERO, _ZERO, _MINUS_ONE))

#: Phase gate S = T^2 (paper Example 2).
S = GateDef(name="s", matrix=(1, 0, 0, 1j), exact=_exact(_ONE, _ZERO, _ZERO, _I))

#: Adjoint phase gate.
SDG = GateDef(name="sdg", matrix=(1, 0, 0, -1j), exact=_exact(_ONE, _ZERO, _ZERO, _MINUS_I))

#: pi/4 gate T = diag(1, omega) (paper Example 2).
T = GateDef(
    name="t",
    matrix=(1, 0, 0, cmath.exp(1j * math.pi / 4)),
    exact=_exact(_ONE, _ZERO, _ZERO, _OMEGA),
)

#: Adjoint T gate.
TDG = GateDef(
    name="tdg",
    matrix=(1, 0, 0, cmath.exp(-1j * math.pi / 4)),
    exact=_exact(_ONE, _ZERO, _ZERO, _OMEGA_CONJ),
)

#: sqrt(X) = H S H -- Clifford, hence exact: 1/2 [[1+i, 1-i], [1-i, 1+i]].
_HALF_1PI = DOmega.from_coefficients(0, 1, 0, 1, k=2)  # (1+i)/2
_HALF_1MI = DOmega.from_coefficients(0, -1, 0, 1, k=2)  # (1-i)/2
SQRT_X = GateDef(
    name="sx",
    matrix=(0.5 + 0.5j, 0.5 - 0.5j, 0.5 - 0.5j, 0.5 + 0.5j),
    exact=_exact(_HALF_1PI, _HALF_1MI, _HALF_1MI, _HALF_1PI),
)


def identity_gate() -> GateDef:
    """The single-qubit identity (useful for tests and padding)."""
    return GateDef(name="id", matrix=(1, 0, 0, 1), exact=_exact(_ONE, _ZERO, _ZERO, _ONE))


def phase_gate(theta: float) -> GateDef:
    """``P(theta) = diag(1, e^{i theta})``.

    Exact (``D[omega]`` entries) iff ``theta`` is a multiple of
    ``pi/4`` -- then ``e^{i theta}`` is a power of ``omega``.
    """
    exact = None
    ratio = theta / (math.pi / 4)
    nearest = round(ratio)
    if abs(ratio - nearest) < 1e-12:
        exact = _exact(_ONE, _ZERO, _ZERO, DOmega.omega_power(nearest % 8))
        theta = nearest * math.pi / 4
    return GateDef(
        name="p",
        matrix=(1, 0, 0, cmath.exp(1j * theta)),
        exact=exact,
        params=(theta,),
    )


def rz_gate(theta: float) -> GateDef:
    """``RZ(theta) = diag(e^{-i theta/2}, e^{i theta/2})`` (numeric only).

    Even for ``theta = pi/4`` the entries involve ``e^{i pi/8}`` which is
    outside ``D[omega]``; algebraic simulation requires a Clifford+T
    approximation (:mod:`repro.approx`), exactly as the paper's GSE
    benchmark required Quipper preprocessing.
    """
    half = theta / 2.0
    return GateDef(
        name="rz",
        matrix=(cmath.exp(-1j * half), 0, 0, cmath.exp(1j * half)),
        params=(theta,),
    )


def ry_gate(theta: float) -> GateDef:
    """``RY(theta)`` rotation (numeric only in general)."""
    half = theta / 2.0
    return GateDef(
        name="ry",
        matrix=(math.cos(half), -math.sin(half), math.sin(half), math.cos(half)),
        params=(theta,),
    )


def rx_gate(theta: float) -> GateDef:
    """``RX(theta)`` rotation (numeric only in general)."""
    half = theta / 2.0
    return GateDef(
        name="rx",
        matrix=(
            math.cos(half),
            -1j * math.sin(half),
            -1j * math.sin(half),
            math.cos(half),
        ),
        params=(theta,),
    )


def u_gate(theta: float, phi: float, lam: float) -> GateDef:
    """The generic single-qubit gate ``U(theta, phi, lambda)`` (numeric)."""
    return GateDef(
        name="u",
        matrix=(
            math.cos(theta / 2),
            -cmath.exp(1j * lam) * math.sin(theta / 2),
            cmath.exp(1j * phi) * math.sin(theta / 2),
            cmath.exp(1j * (phi + lam)) * math.cos(theta / 2),
        ),
        params=(theta, phi, lam),
    )


#: Named fixed gates for QASM parsing and convenience lookup.
STANDARD_GATES = {
    gate.name: gate
    for gate in (H, X, Y, Z, S, SDG, T, TDG, SQRT_X, identity_gate())
}
