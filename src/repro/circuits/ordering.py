r"""Qubit relabelling and variable-order experiments.

Decision-diagram size depends on the variable order: placing tightly
correlated qubits at adjacent levels shrinks the DD, while interleaving
them inflates it.  QMDD packages address this with dynamic reordering;
this module provides the static equivalent -- rewriting a circuit under
a qubit permutation -- which, combined with the simulator, lets users
measure how much the order matters for a given workload (see
``benchmarks/bench_ordering.py``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.circuits.circuit import Circuit, Operation
from repro.errors import CircuitError

__all__ = ["permute_qubits", "reversed_order", "interleaved_order"]


def permute_qubits(circuit: Circuit, permutation: Sequence[int]) -> Circuit:
    """Relabel qubits: ``new_qubit = permutation[old_qubit]``.

    The permuted circuit computes the same function modulo the qubit
    relabelling; only the DD variable order (and hence DD sizes)
    changes.
    """
    if sorted(permutation) != list(range(circuit.num_qubits)):
        raise CircuitError(
            f"permutation must be a rearrangement of 0..{circuit.num_qubits - 1}"
        )
    mapping: Dict[int, int] = {old: new for old, new in enumerate(permutation)}
    permuted = Circuit(circuit.num_qubits, name=f"{circuit.name}_perm")
    for operation in circuit:
        permuted.operations.append(
            Operation(
                operation.gate,
                mapping[operation.target],
                tuple(mapping[c] for c in operation.controls),
                tuple(mapping[c] for c in operation.negative_controls),
            )
        )
    return permuted


def reversed_order(num_qubits: int) -> List[int]:
    """The reversal permutation (qubit 0 becomes the last level)."""
    return list(range(num_qubits - 1, -1, -1))


def interleaved_order(num_qubits: int) -> List[int]:
    """Riffle the two register halves: ``0, n/2, 1, n/2+1, ...``.

    The classic worst-case order for circuits whose two halves are
    pairwise entangled (e.g. Simon's input/output registers).
    """
    half = (num_qubits + 1) // 2
    order: List[int] = []
    for index in range(half):
        order.append(index)
        if half + index < num_qubits:
            order.append(half + index)
    # order[i] is the old qubit placed at new position i; invert it to
    # the permutation format new = permutation[old].
    permutation = [0] * num_qubits
    for new_position, old_qubit in enumerate(order):
        permutation[old_qubit] = new_position
    return permutation
