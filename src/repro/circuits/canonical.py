r"""Canonical circuit+configuration hashing for caches and dedup.

Display names are presentation, not identity: ``T`` and ``p(pi/4)``
apply the same unitary (``diag(1, omega)``), the evalsuite drivers
label circuits by whatever the builder chose to call them, and two
sweeps of the same gate sequence under the same configuration should
share one cache entry.  :func:`canonical_hash` gives every
(circuit, config) pair a stable 256-bit identity built from what the
simulator actually consumes:

* **gate identity** -- the exact ``D[omega]`` entry keys
  (:meth:`repro.rings.domega.DOmega.key`) when the gate is
  Clifford+T-exact, so every spelling of the same exact gate hashes
  identically; numeric-only gates hash by the IEEE-754 bit patterns of
  their matrix entries (name-independent, and distinguishes angles the
  float grid distinguishes -- exactly the resolution the numeric
  simulator itself has);
* **operand normalisation** -- positive and negative control sets are
  order-insensitive in the gate model, so they are sorted before
  hashing;
* **configuration fingerprint** -- every semantic
  :class:`repro.api.SimulatorConfig` field except ``telemetry``
  (observability never changes simulation results; everything else --
  including the GC policy and memory budget, which can turn a success
  into a :class:`~repro.errors.MemoryBudgetExceeded` -- does or can).
  Floats enter as exact IEEE-754 bit patterns, never via ``repr``.

The circuit's display ``name`` and the gate's display name are
deliberately **excluded**.  The hash is used as the key of the
``repro.serve`` result cache and as the circuit identity recorded by
the evalsuite drivers (:class:`repro.evalsuite.tradeoff.TradeoffResult`).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Optional, Tuple

from repro.circuits.circuit import Circuit, Operation

__all__ = ["canonical_hash", "circuit_fingerprint", "config_fingerprint"]

#: Fingerprint format version -- bump on any change to the hashed
#: material so stale cross-process caches can never alias.
_VERSION = 1

#: The semantic configuration fields, in hash order.  ``telemetry`` is
#: deliberately absent (observability is invisible to results).
_CONFIG_FIELDS: Tuple[str, ...] = (
    "system",
    "eps",
    "normalization",
    "precision",
    "sanitize",
    "gc",
    "gc_min_yield",
    "max_nodes",
    "max_bytes",
    "record_bit_widths",
    "use_apply_kernel",
)


def _float_bits(value: float) -> bytes:
    """The exact IEEE-754 little-endian image of ``value``."""
    return struct.pack("<d", float(value))


def _gate_identity(operation: Operation) -> Tuple[Any, ...]:
    """Name-normalised identity of the base gate.

    Exact gates are identified by their ``D[omega]`` entry keys -- the
    canonical integer coordinates the algebraic managers intern -- so
    ``T`` and ``phase_gate(pi/4)`` (or ``SDG`` and
    ``phase_gate(-pi/2)``) collapse to one identity.  Numeric-only
    gates are identified by the bit patterns of their eight matrix
    components.
    """
    gate = operation.gate
    if gate.exact is not None:
        return ("exact", tuple(entry.key() for entry in gate.exact))
    parts = b"".join(
        _float_bits(component)
        for entry in gate.matrix
        for component in (complex(entry).real, complex(entry).imag)
    )
    return ("numeric", parts)


def circuit_fingerprint(circuit: Circuit) -> Tuple[Any, ...]:
    """The hashable canonical form of one circuit (no display names)."""
    return (
        _VERSION,
        circuit.num_qubits,
        tuple(
            (
                _gate_identity(operation),
                operation.target,
                tuple(sorted(operation.controls)),
                tuple(sorted(operation.negative_controls)),
            )
            for operation in circuit.operations
        ),
    )


def config_fingerprint(config: Optional[Any]) -> Tuple[Any, ...]:
    """The hashable canonical form of a simulator configuration.

    Duck-typed over the :class:`repro.api.SimulatorConfig` fields so
    this module needs no import from the facade (which imports this
    package).  ``None`` hashes as the distinct "no configuration"
    marker, not as the default configuration.
    """
    if config is None:
        return ("none",)
    values = []
    for name in _CONFIG_FIELDS:
        value = getattr(config, name)
        if isinstance(value, float):
            value = _float_bits(value)
        values.append((name, value))
    return tuple(values)


def canonical_hash(circuit: Circuit, config: Optional[Any] = None) -> str:
    """A stable sha256 hex identity for ``(circuit, config)``.

    Independent of display names, control ordering and process (no
    ``repr`` of floats, no interpreter ``hash`` randomisation); equal
    exactly when the simulator would be handed the same work.
    """
    digest = hashlib.sha256()
    digest.update(repr(circuit_fingerprint(circuit)).encode("utf-8"))
    digest.update(b"|")
    digest.update(repr(config_fingerprint(config)).encode("utf-8"))
    return digest.hexdigest()
