r"""Quantum circuits: ordered sequences of (multi-)controlled gates.

A :class:`Circuit` is the unit of work for the simulator
(:mod:`repro.sim`) and the equivalence checker (:mod:`repro.verify`).
Each :class:`Operation` applies a single-qubit base gate
(:class:`~repro.circuits.gates.GateDef`) to one target under an
arbitrary set of positive and negative controls -- exactly the gate
model the QMDD gate builder supports natively, so multi-controlled
gates (Toffoli, the Grover-diffusion MCZ, ...) need no ancilla
decomposition.

Builder methods mirror common conventions::

    circuit = Circuit(3)
    circuit.h(0).cx(0, 1).ccx(0, 1, 2).t(2)
    print(circuit)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.circuits.gates import (
    H,
    S,
    SDG,
    SQRT_X,
    T,
    TDG,
    X,
    Y,
    Z,
    GateDef,
    phase_gate,
    rx_gate,
    ry_gate,
    rz_gate,
)
from repro.errors import CircuitError

__all__ = ["Operation", "Circuit"]


@dataclass(frozen=True)
class Operation:
    """One gate application inside a circuit."""

    gate: GateDef
    target: int
    controls: Tuple[int, ...] = ()
    negative_controls: Tuple[int, ...] = ()

    def qubits(self) -> Tuple[int, ...]:
        return (self.target,) + self.controls + self.negative_controls

    def dagger(self) -> "Operation":
        return Operation(
            gate=self.gate.dagger(),
            target=self.target,
            controls=self.controls,
            negative_controls=self.negative_controls,
        )

    def __str__(self) -> str:
        text = str(self.gate)
        if self.controls:
            text = "c" * len(self.controls) + text
        decorations = []
        for control in self.controls:
            decorations.append(f"c{control}")
        for control in self.negative_controls:
            decorations.append(f"!c{control}")
        suffix = f" [{', '.join(decorations)}]" if decorations else ""
        return f"{text} q{self.target}{suffix}"


class Circuit:
    """A gate-list circuit over ``num_qubits`` qubits.

    All builder methods return ``self`` for chaining.
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = num_qubits
        self.name = name
        self.operations: List[Operation] = []

    # ------------------------------------------------------------------
    # Core append
    # ------------------------------------------------------------------

    def append(
        self,
        gate: GateDef,
        target: int,
        controls: Iterable[int] = (),
        negative_controls: Iterable[int] = (),
    ) -> "Circuit":
        controls = tuple(controls)
        negative_controls = tuple(negative_controls)
        for qubit in (target,) + controls + negative_controls:
            if not 0 <= qubit < self.num_qubits:
                raise CircuitError(
                    f"qubit {qubit} out of range for {self.num_qubits}-qubit circuit"
                )
        touched = (target,) + controls + negative_controls
        if len(set(touched)) != len(touched):
            raise CircuitError(f"duplicate qubit in gate application: {touched}")
        self.operations.append(
            Operation(gate, target, controls, negative_controls)
        )
        return self

    def extend(self, other: "Circuit") -> "Circuit":
        """Append all operations of ``other`` (same width required)."""
        if other.num_qubits != self.num_qubits:
            raise CircuitError("cannot extend with a circuit of different width")
        self.operations.extend(other.operations)
        return self

    # ------------------------------------------------------------------
    # Named builders
    # ------------------------------------------------------------------

    def h(self, qubit: int) -> "Circuit":
        return self.append(H, qubit)

    def x(self, qubit: int) -> "Circuit":
        return self.append(X, qubit)

    def y(self, qubit: int) -> "Circuit":
        return self.append(Y, qubit)

    def z(self, qubit: int) -> "Circuit":
        return self.append(Z, qubit)

    def s(self, qubit: int) -> "Circuit":
        return self.append(S, qubit)

    def sdg(self, qubit: int) -> "Circuit":
        return self.append(SDG, qubit)

    def t(self, qubit: int) -> "Circuit":
        return self.append(T, qubit)

    def tdg(self, qubit: int) -> "Circuit":
        return self.append(TDG, qubit)

    def sx(self, qubit: int) -> "Circuit":
        return self.append(SQRT_X, qubit)

    def p(self, theta: float, qubit: int) -> "Circuit":
        return self.append(phase_gate(theta), qubit)

    def rx(self, theta: float, qubit: int) -> "Circuit":
        return self.append(rx_gate(theta), qubit)

    def ry(self, theta: float, qubit: int) -> "Circuit":
        return self.append(ry_gate(theta), qubit)

    def rz(self, theta: float, qubit: int) -> "Circuit":
        return self.append(rz_gate(theta), qubit)

    def cx(self, control: int, target: int) -> "Circuit":
        return self.append(X, target, controls=[control])

    def cz(self, control: int, target: int) -> "Circuit":
        return self.append(Z, target, controls=[control])

    def cp(self, theta: float, control: int, target: int) -> "Circuit":
        return self.append(phase_gate(theta), target, controls=[control])

    def ch(self, control: int, target: int) -> "Circuit":
        return self.append(H, target, controls=[control])

    def swap(self, first: int, second: int) -> "Circuit":
        """SWAP decomposed into three CNOTs (all exactly representable)."""
        return self.cx(first, second).cx(second, first).cx(first, second)

    def ccx(self, control_a: int, control_b: int, target: int) -> "Circuit":
        return self.append(X, target, controls=[control_a, control_b])

    def ccz(self, control_a: int, control_b: int, target: int) -> "Circuit":
        return self.append(Z, target, controls=[control_a, control_b])

    def mcx(self, controls: Iterable[int], target: int) -> "Circuit":
        return self.append(X, target, controls=controls)

    def mcz(self, controls: Iterable[int], target: int) -> "Circuit":
        return self.append(Z, target, controls=controls)

    def mcp(self, theta: float, controls: Iterable[int], target: int) -> "Circuit":
        return self.append(phase_gate(theta), target, controls=controls)

    # ------------------------------------------------------------------
    # Whole-circuit transformations
    # ------------------------------------------------------------------

    def inverse(self) -> "Circuit":
        """The adjoint circuit (reversed order, adjoint gates)."""
        inverted = Circuit(self.num_qubits, name=f"{self.name}_dg")
        for operation in reversed(self.operations):
            inverted.operations.append(operation.dagger())
        return inverted

    def repeat(self, times: int) -> "Circuit":
        """``times`` sequential repetitions of this circuit."""
        if times < 0:
            raise CircuitError("repetition count must be non-negative")
        repeated = Circuit(self.num_qubits, name=f"{self.name}_x{times}")
        for _ in range(times):
            repeated.operations.extend(self.operations)
        return repeated

    def __add__(self, other: "Circuit") -> "Circuit":
        if other.num_qubits != self.num_qubits:
            raise CircuitError("cannot concatenate circuits of different width")
        combined = Circuit(self.num_qubits, name=f"{self.name}+{other.name}")
        combined.operations = self.operations + other.operations
        return combined

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __getitem__(self, index):
        return self.operations[index]

    @property
    def is_exactly_representable(self) -> bool:
        """True iff every gate has exact ``D[omega]`` entries, i.e. the
        circuit can be simulated by the algebraic QMDDs without any
        approximation (like the paper's Grover and BWT benchmarks)."""
        return all(op.gate.is_exactly_representable for op in self.operations)

    def gate_counts(self) -> dict:
        """Histogram of base-gate names (controls not distinguished)."""
        counts: dict = {}
        for operation in self.operations:
            counts[operation.gate.name] = counts.get(operation.gate.name, 0) + 1
        return counts

    def t_count(self) -> int:
        """Number of T/Tdg gates -- the usual fault-tolerance cost metric."""
        return sum(1 for op in self.operations if op.gate.name in ("t", "tdg"))

    def depth_touched_qubits(self) -> int:
        """Number of distinct qubits actually used by the operations."""
        touched = set()
        for operation in self.operations:
            touched.update(operation.qubits())
        return len(touched)

    def __str__(self) -> str:
        header = f"{self.name}: {self.num_qubits} qubits, {len(self)} gates"
        body = "\n".join(f"  {op}" for op in self.operations[:50])
        if len(self.operations) > 50:
            body += f"\n  ... ({len(self.operations) - 50} more)"
        return f"{header}\n{body}" if body else header

    def __repr__(self) -> str:
        return f"Circuit(num_qubits={self.num_qubits}, gates={len(self)}, name={self.name!r})"
