r"""Composite circuit builders.

Reusable sub-circuits used by examples, tests and the benchmark
algorithms: GHZ preparation, uniform superposition, the quantum Fourier
transform (exact when the width keeps all controlled phases at
multiples of ``pi/4``) and an ancilla-free multi-controlled-X
decomposition into Toffolis for comparison with the native
multi-control support of the DD layer.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.circuits.circuit import Circuit
from repro.errors import CircuitError

__all__ = [
    "ghz_circuit",
    "uniform_superposition",
    "qft_circuit",
    "inverse_qft_circuit",
    "mcx_with_toffolis",
    "basis_permutation_circuit",
]


def ghz_circuit(num_qubits: int) -> Circuit:
    """The GHZ state preparation ``H(0); CX(0,1); ...; CX(n-2, n-1)``."""
    circuit = Circuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def uniform_superposition(num_qubits: int) -> Circuit:
    """A layer of Hadamards on every qubit."""
    circuit = Circuit(num_qubits, name=f"h_layer_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    return circuit


def qft_circuit(num_qubits: int, include_swaps: bool = True) -> Circuit:
    """The quantum Fourier transform.

    Controlled phases use angles ``pi/2^k``; only ``k <= 2``
    (i.e. angles >= pi/4) are Clifford+T-exact, so the QFT on more than
    3 qubits is *not* exactly representable -- a natural test case for
    the exact-vs-approximate boundary the paper draws.
    """
    circuit = Circuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits), start=1):
            circuit.cp(math.pi / (2**offset), control, target)
    if include_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit


def inverse_qft_circuit(num_qubits: int, include_swaps: bool = True) -> Circuit:
    """The adjoint of :func:`qft_circuit`."""
    inverse = qft_circuit(num_qubits, include_swaps=include_swaps).inverse()
    inverse.name = f"iqft_{num_qubits}"
    return inverse


def mcx_with_toffolis(
    num_qubits: int, controls: Sequence[int], target: int, ancillas: Sequence[int]
) -> Circuit:
    """Multi-controlled X decomposed into a Toffoli ladder.

    Needs ``len(controls) - 2`` clean ancillas for ``len(controls) >= 3``.
    Provided for ablation against the DD layer's native multi-control
    support (which needs no ancillas at all).
    """
    controls = list(controls)
    ancillas = list(ancillas)
    circuit = Circuit(num_qubits, name="mcx_toffoli")
    if len(controls) == 0:
        return circuit.x(target)
    if len(controls) == 1:
        return circuit.cx(controls[0], target)
    if len(controls) == 2:
        return circuit.ccx(controls[0], controls[1], target)
    needed = len(controls) - 2
    if len(ancillas) < needed:
        raise CircuitError(f"need {needed} ancillas for {len(controls)} controls")
    ladder: List[tuple] = []
    circuit.ccx(controls[0], controls[1], ancillas[0])
    ladder.append((controls[0], controls[1], ancillas[0]))
    for index in range(2, len(controls) - 1):
        circuit.ccx(controls[index], ancillas[index - 2], ancillas[index - 1])
        ladder.append((controls[index], ancillas[index - 2], ancillas[index - 1]))
    circuit.ccx(controls[-1], ancillas[needed - 1], target)
    for a, b, c in reversed(ladder):
        circuit.ccx(a, b, c)
    return circuit


def basis_permutation_circuit(num_qubits: int, swaps: Iterable[tuple]) -> Circuit:
    """X-conjugated CX networks permuting computational basis labels.

    Each ``(i, j)`` pair swaps qubit lines ``i`` and ``j`` (three CNOTs);
    handy for building reversible-logic style test circuits.
    """
    circuit = Circuit(num_qubits, name="basis_permutation")
    for first, second in swaps:
        circuit.swap(first, second)
    return circuit
