r"""Light-weight circuit rewrites for interoperability.

The DD layer supports negative controls and arbitrary multi-controlled
single-qubit gates natively, but external tools (and OpenQASM 2.0)
mostly do not.  This module provides the bridging rewrites:

* :func:`expand_negative_controls` -- conjugate negative controls with
  X gates, producing a circuit with positive controls only (exactly
  equivalent; the standard trick);
* :func:`count_multi_controls` -- quick inventory of what a consumer
  must support.
"""

from __future__ import annotations

from typing import Dict

from repro.circuits.circuit import Circuit, Operation
from repro.circuits.gates import X

__all__ = [
    "expand_negative_controls",
    "count_multi_controls",
    "transpile_to_basic_gates",
]


def expand_negative_controls(circuit: Circuit) -> Circuit:
    """Rewrite every negative control as an X-conjugated positive one.

    The result computes the identical unitary and is accepted by
    :func:`repro.circuits.qasm.to_qasm` for gates QASM can name.
    """
    expanded = Circuit(circuit.num_qubits, name=f"{circuit.name}_posctrl")
    for operation in circuit:
        if not operation.negative_controls:
            expanded.operations.append(operation)
            continue
        for qubit in operation.negative_controls:
            expanded.operations.append(Operation(X, qubit))
        expanded.operations.append(
            Operation(
                operation.gate,
                operation.target,
                operation.controls + operation.negative_controls,
                (),
            )
        )
        for qubit in operation.negative_controls:
            expanded.operations.append(Operation(X, qubit))
    return expanded


def transpile_to_basic_gates(circuit: Circuit) -> Circuit:
    """Rewrite into the elementary Clifford+T set {1-qubit gates, CX}.

    Supported inputs: any uncontrolled gate; CX/CZ/CY/CH and controlled
    phases ``p(k*pi/4)``; doubly-controlled X/Z and doubly-controlled
    ``pi/4``-multiple phases.  Negative controls are expanded first.
    The Toffoli uses the standard 7-T decomposition.  Raises
    :class:`~repro.errors.CircuitError` for gates outside this set
    (arbitrary multi-controls: keep them for the DD layer, or use
    :mod:`repro.synth` for a from-scratch factorisation).
    """
    import math

    from repro.circuits.gates import phase_gate
    from repro.errors import CircuitError

    source = expand_negative_controls(circuit)
    result = Circuit(circuit.num_qubits, name=f"{circuit.name}_basic")

    def emit_phase_word(theta: float, qubit: int) -> None:
        ratio = theta / (math.pi / 4)
        steps = round(ratio)
        if abs(ratio - steps) > 1e-12:
            # Determinant obstruction: a controlled phase whose half
            # angle is an odd pi/4 multiple (e.g. controlled-T) cannot
            # be realised ancilla-free over {1-qubit Clifford+T, CX} --
            # achievable determinants are even powers of omega only.
            raise CircuitError(
                f"phase {theta:.6g} is not a pi/4 multiple; the enclosing "
                "controlled phase (e.g. controlled-T) needs an ancilla -- "
                "keep it for the DD layer instead"
            )
        for _ in range(steps % 8):
            result.t(qubit)

    def emit_controlled_phase(theta: float, control: int, target: int) -> None:
        # cp(theta) = p(theta/2) c; p(theta/2) t; cx; p(-theta/2) t; cx
        emit_phase_word(theta / 2, control)
        emit_phase_word(theta / 2, target)
        result.cx(control, target)
        emit_phase_word(-theta / 2, target)
        result.cx(control, target)

    def emit_ccx(a: int, b: int, c: int) -> None:
        # The standard 7-T Toffoli.
        result.h(c)
        result.cx(b, c)
        result.tdg(c)
        result.cx(a, c)
        result.t(c)
        result.cx(b, c)
        result.tdg(c)
        result.cx(a, c)
        result.t(b)
        result.t(c)
        result.h(c)
        result.cx(a, b)
        result.t(a)
        result.tdg(b)
        result.cx(a, b)

    def is_pi4_phase(gate) -> bool:
        if gate.name != "p" or not gate.params:
            return False
        ratio = gate.params[0] / (math.pi / 4)
        return abs(ratio - round(ratio)) < 1e-12

    for operation in source:
        gate = operation.gate
        controls = operation.controls
        if not controls:
            result.operations.append(operation)
            continue
        if len(controls) == 1:
            control = controls[0]
            target = operation.target
            if gate.name == "x":
                result.cx(control, target)
            elif gate.name == "z":
                result.h(target)
                result.cx(control, target)
                result.h(target)
            elif gate.name == "y":
                result.sdg(target)
                result.cx(control, target)
                result.s(target)
            elif gate.name == "h":
                # qiskit's exact CH decomposition.
                result.s(target)
                result.h(target)
                result.t(target)
                result.cx(control, target)
                result.tdg(target)
                result.h(target)
                result.sdg(target)
            elif gate.name in ("s", "sdg", "t", "tdg") or is_pi4_phase(gate):
                angles = {"s": math.pi / 2, "sdg": -math.pi / 2,
                          "t": math.pi / 4, "tdg": -math.pi / 4}
                theta = angles.get(gate.name, gate.params[0] if gate.params else 0.0)
                emit_controlled_phase(theta, control, target)
            else:
                raise CircuitError(
                    f"cannot transpile controlled {gate.name!r} to basic gates"
                )
            continue
        if len(controls) == 2:
            a, b = controls
            target = operation.target
            if gate.name == "x":
                emit_ccx(a, b, target)
            elif gate.name == "z":
                result.h(target)
                emit_ccx(a, b, target)
                result.h(target)
            elif gate.name in ("s", "sdg", "t", "tdg") or is_pi4_phase(gate):
                angles = {"s": math.pi / 2, "sdg": -math.pi / 2,
                          "t": math.pi / 4, "tdg": -math.pi / 4}
                theta = angles.get(gate.name, gate.params[0] if gate.params else 0.0)
                # ccp(theta) = cp(theta/2)(a,b) cp(theta/2)(a,t) cx(b,t)
                #              cp(-theta/2)(a,t) cx(b,t)  [half-angle identity]
                emit_controlled_phase(theta / 2, a, b)
                emit_controlled_phase(theta / 2, a, target)
                result.cx(b, target)
                emit_controlled_phase(-theta / 2, a, target)
                result.cx(b, target)
            else:
                raise CircuitError(
                    f"cannot transpile doubly-controlled {gate.name!r}"
                )
            continue
        raise CircuitError(
            f"{len(controls)} controls exceed the basic-gate transpiler; "
            "keep multi-controls for the DD layer or use repro.synth"
        )
    return result


def count_multi_controls(circuit: Circuit) -> Dict[int, int]:
    """Histogram of control counts (0 = plain single-qubit gates)."""
    histogram: Dict[int, int] = {}
    for operation in circuit:
        controls = len(operation.controls) + len(operation.negative_controls)
        histogram[controls] = histogram.get(controls, 0) + 1
    return histogram
