"""Quantum-circuit substrate: gates, circuits, composite builders, QASM I/O."""

from repro.circuits.canonical import (
    canonical_hash,
    circuit_fingerprint,
    config_fingerprint,
)
from repro.circuits.circuit import Circuit, Operation
from repro.circuits.gates import (
    H,
    S,
    SDG,
    SQRT_X,
    STANDARD_GATES,
    T,
    TDG,
    X,
    Y,
    Z,
    GateDef,
    identity_gate,
    phase_gate,
    rx_gate,
    ry_gate,
    rz_gate,
    u_gate,
)
from repro.circuits.library import (
    basis_permutation_circuit,
    ghz_circuit,
    inverse_qft_circuit,
    mcx_with_toffolis,
    qft_circuit,
    uniform_superposition,
)
from repro.circuits.ordering import interleaved_order, permute_qubits, reversed_order
from repro.circuits.qasm import from_qasm, to_qasm
from repro.circuits.transpile import (
    count_multi_controls,
    expand_negative_controls,
    transpile_to_basic_gates,
)

__all__ = [
    "Circuit",
    "GateDef",
    "H",
    "Operation",
    "S",
    "SDG",
    "SQRT_X",
    "STANDARD_GATES",
    "T",
    "TDG",
    "X",
    "Y",
    "Z",
    "basis_permutation_circuit",
    "canonical_hash",
    "circuit_fingerprint",
    "config_fingerprint",
    "count_multi_controls",
    "expand_negative_controls",
    "from_qasm",
    "ghz_circuit",
    "interleaved_order",
    "permute_qubits",
    "reversed_order",
    "identity_gate",
    "inverse_qft_circuit",
    "mcx_with_toffolis",
    "phase_gate",
    "qft_circuit",
    "rx_gate",
    "ry_gate",
    "rz_gate",
    "to_qasm",
    "transpile_to_basic_gates",
    "u_gate",
    "uniform_superposition",
]
