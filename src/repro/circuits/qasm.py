r"""Minimal OpenQASM 2.0 subset I/O.

Supports the gate set this package actually uses -- named Clifford+T
gates, rotations/phases, and (multi-)controlled forms via ``cx``,
``cz``, ``ccx``, ``cp`` -- enough to exchange the benchmark circuits
with mainstream tools.  One quantum register, no classical registers,
no measurement statements (simulation is statevector-based).
"""

from __future__ import annotations

import math
import re

from repro.circuits.circuit import Circuit
from repro.circuits.gates import STANDARD_GATES, phase_gate, rx_gate, ry_gate, rz_gate
from repro.errors import CircuitError

__all__ = ["to_qasm", "from_qasm"]

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def to_qasm(circuit: Circuit) -> str:
    """Serialise a circuit to OpenQASM 2.0 text."""
    lines = [_HEADER + f"qreg q[{circuit.num_qubits}];"]
    for operation in circuit:
        if operation.negative_controls:
            raise CircuitError(
                "OpenQASM 2.0 has no negative-control syntax; expand with X "
                "conjugation before export"
            )
        gate = operation.gate
        params = ""
        if gate.params:
            params = "(" + ", ".join(f"{p!r}" for p in gate.params) + ")"
        prefix = "c" * len(operation.controls)
        qubits = [f"q[{c}]" for c in operation.controls] + [f"q[{operation.target}]"]
        lines.append(f"{prefix}{gate.name}{params} {', '.join(qubits)};")
    return "\n".join(lines) + "\n"


_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_GATE_RE = re.compile(r"^(?P<name>[a-z]+)(?:\((?P<params>[^)]*)\))?\s+(?P<args>.+)$")
_ARG_RE = re.compile(r"\w+\s*\[\s*(\d+)\s*\]")

_ROTATIONS = {"rx": rx_gate, "ry": ry_gate, "rz": rz_gate, "p": phase_gate, "u1": phase_gate}


def _eval_param(text: str) -> float:
    """Evaluate a QASM parameter expression (pi arithmetic only)."""
    cleaned = text.strip()
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\(\) pi]*", cleaned):
        raise CircuitError(f"unsupported parameter expression: {text!r}")
    return float(eval(cleaned, {"__builtins__": {}}, {"pi": math.pi}))


def from_qasm(text: str) -> Circuit:
    """Parse the supported OpenQASM 2.0 subset into a :class:`Circuit`."""
    circuit = None
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line or line.startswith(("OPENQASM", "include")):
            continue
        for statement in filter(None, (part.strip() for part in line.split(";"))):
            match = _QREG_RE.match(statement)
            if match:
                circuit = Circuit(int(match.group(2)), name="qasm_import")
                continue
            if statement.startswith(("creg", "barrier", "measure")):
                continue
            if circuit is None:
                raise CircuitError("gate statement before qreg declaration")
            _parse_gate(circuit, statement)
    if circuit is None:
        raise CircuitError("no qreg declaration found")
    return circuit


def _parse_gate(circuit: Circuit, statement: str) -> None:
    match = _GATE_RE.match(statement)
    if not match:
        raise CircuitError(f"cannot parse statement: {statement!r}")
    name = match.group("name")
    params = match.group("params")
    qubits = [int(index) for index in _ARG_RE.findall(match.group("args"))]
    if not qubits:
        raise CircuitError(f"no qubit arguments in: {statement!r}")

    # Strip the control prefix (cx, ccx, cz, cp, ...): the shortest
    # all-'c' prefix whose remainder is a known base gate.
    base = name
    control_count = 0
    for prefix_length in range(len(name)):
        if any(ch != "c" for ch in name[:prefix_length]):
            break
        if _base_gate_exists(name[prefix_length:]):
            base = name[prefix_length:]
            control_count = prefix_length
            break
    if base == "swap":
        if control_count:
            raise CircuitError("controlled swap not supported")
        circuit.swap(qubits[0], qubits[1])
        return
    controls = qubits[:control_count]
    target = qubits[control_count]
    if base in _ROTATIONS:
        if params is None:
            raise CircuitError(f"gate {base} requires a parameter")
        gate = _ROTATIONS[base](_eval_param(params))
    elif base in STANDARD_GATES:
        gate = STANDARD_GATES[base]
    else:
        raise CircuitError(f"unsupported gate {name!r}")
    circuit.append(gate, target, controls=controls)


def _base_gate_exists(name: str) -> bool:
    return name in STANDARD_GATES or name in _ROTATIONS or name == "swap"
