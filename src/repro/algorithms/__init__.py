"""The paper's benchmark quantum algorithms.

* :mod:`repro.algorithms.grover` -- database search [2] (exact gates);
* :mod:`repro.algorithms.bwt` -- Binary Welded Tree walk [38] (exact);
* :mod:`repro.algorithms.gse` -- ground-state estimation via phase
  estimation [33], Clifford+T-compiled like the paper's Quipper
  preprocessing.
"""

from repro.algorithms.bwt import (
    bwt_circuit,
    bwt_register_sizes,
    edge_colouring,
    welded_tree_graph,
)
from repro.algorithms.grover import (
    grover_circuit,
    grover_diffusion,
    grover_oracle,
    optimal_iterations,
    success_probability_bound,
)
from repro.algorithms.arithmetic import (
    cuccaro_adder,
    decode_cuccaro,
    decode_draper,
    draper_adder,
    encode_cuccaro,
    encode_draper,
)
from repro.algorithms.oracles import (
    bernstein_vazirani_circuit,
    deutsch_jozsa_balanced_circuit,
    deutsch_jozsa_constant_circuit,
    simon_circuit,
    solve_simon_system,
)
from repro.algorithms.gse import (
    DiagonalHamiltonian,
    default_hamiltonian,
    ground_state,
    gse_circuit,
    gse_rotation_circuit,
)

__all__ = [
    "DiagonalHamiltonian",
    "bernstein_vazirani_circuit",
    "bwt_circuit",
    "cuccaro_adder",
    "decode_cuccaro",
    "decode_draper",
    "draper_adder",
    "encode_cuccaro",
    "encode_draper",
    "deutsch_jozsa_balanced_circuit",
    "deutsch_jozsa_constant_circuit",
    "simon_circuit",
    "solve_simon_system",
    "bwt_register_sizes",
    "default_hamiltonian",
    "edge_colouring",
    "ground_state",
    "grover_circuit",
    "grover_diffusion",
    "grover_oracle",
    "gse_circuit",
    "gse_rotation_circuit",
    "optimal_iterations",
    "success_probability_bound",
    "welded_tree_graph",
]
