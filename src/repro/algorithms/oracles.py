r"""Oracle-based textbook algorithms (Clifford+T-exact benchmarks).

Three classics whose circuits consist solely of exactly representable
gates -- extending the paper's "Grover/BWT" class of benchmarks where
the algebraic QMDD works without any approximation, and whose final
states have *tiny* decision diagrams (product or near-product states):

* **Bernstein-Vazirani**: recover a hidden bit string with one query;
* **Deutsch-Jozsa**: distinguish constant from balanced functions;
* **Simon**: find the hidden XOR period (circuit construction; the
  classical post-processing solves the resulting linear system).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from repro.circuits.circuit import Circuit
from repro.errors import CircuitError

__all__ = [
    "bernstein_vazirani_circuit",
    "deutsch_jozsa_constant_circuit",
    "deutsch_jozsa_balanced_circuit",
    "simon_circuit",
    "solve_simon_system",
]


def bernstein_vazirani_circuit(secret: int, num_bits: int) -> Circuit:
    """BV for the secret ``s``: one query to ``f(x) = s . x``.

    Register layout: ``num_bits`` input qubits then one oracle ancilla.
    Measuring the input register afterwards yields ``s`` with
    certainty; the final DD is a product state of ``n + 1`` nodes.
    """
    if not 0 <= secret < (1 << num_bits):
        raise CircuitError(f"secret {secret} out of range for {num_bits} bits")
    circuit = Circuit(num_bits + 1, name=f"bv_{num_bits}b_s{secret}")
    ancilla = num_bits
    circuit.x(ancilla)
    for qubit in range(num_bits + 1):
        circuit.h(qubit)
    # Oracle: f(x) = s.x realised by CX from each secret bit into the
    # phase-kickback ancilla.
    for qubit in range(num_bits):
        if (secret >> (num_bits - 1 - qubit)) & 1:
            circuit.cx(qubit, ancilla)
    for qubit in range(num_bits):
        circuit.h(qubit)
    return circuit


def deutsch_jozsa_constant_circuit(num_bits: int, value: int = 0) -> Circuit:
    """DJ with a constant oracle ``f(x) = value`` (0 or 1)."""
    if value not in (0, 1):
        raise CircuitError("constant value must be 0 or 1")
    circuit = Circuit(num_bits + 1, name=f"dj_const{value}_{num_bits}b")
    ancilla = num_bits
    circuit.x(ancilla)
    for qubit in range(num_bits + 1):
        circuit.h(qubit)
    if value:
        circuit.x(ancilla)
    for qubit in range(num_bits):
        circuit.h(qubit)
    return circuit


def deutsch_jozsa_balanced_circuit(num_bits: int, mask: Optional[int] = None) -> Circuit:
    """DJ with the balanced oracle ``f(x) = (mask . x) mod 2``.

    Any non-zero mask gives a balanced function; measuring the input
    register yields a non-zero outcome with certainty.
    """
    if mask is None:
        mask = (1 << num_bits) - 1
    if not 0 < mask < (1 << num_bits):
        raise CircuitError("balanced oracle needs a non-zero in-range mask")
    circuit = Circuit(num_bits + 1, name=f"dj_bal_{num_bits}b_m{mask}")
    ancilla = num_bits
    circuit.x(ancilla)
    for qubit in range(num_bits + 1):
        circuit.h(qubit)
    for qubit in range(num_bits):
        if (mask >> (num_bits - 1 - qubit)) & 1:
            circuit.cx(qubit, ancilla)
    for qubit in range(num_bits):
        circuit.h(qubit)
    return circuit


def simon_circuit(period: int, num_bits: int, seed: int = 0) -> Circuit:
    """One Simon iteration for the hidden period ``s != 0``.

    Oracle: a random 2-to-1 function with ``f(x) = f(x xor s)``,
    realised reversibly as ``|x>|0> -> |x>|f(x)>`` where
    ``f(x) = g(min(x, x xor s))`` for a random injective ``g`` --
    implemented with CX fan-outs plus multi-controlled corrections.
    Register layout: ``num_bits`` inputs then ``num_bits`` outputs.

    Measuring the input register after the circuit yields uniformly
    random ``y`` with ``y . s = 0``; collect ``n - 1`` independent
    samples and call :func:`solve_simon_system`.
    """
    if not 0 < period < (1 << num_bits):
        raise CircuitError("Simon's period must be non-zero and in range")
    rng = random.Random(seed)
    size = 1 << num_bits
    # Build the 2-to-1 truth table.
    representatives = sorted({min(x, x ^ period) for x in range(size)})
    images = list(range(size))
    rng.shuffle(images)
    table = {}
    for index, representative in enumerate(representatives):
        value = images[index]
        table[representative] = value
        table[representative ^ period] = value

    circuit = Circuit(2 * num_bits, name=f"simon_{num_bits}b_s{period}")
    for qubit in range(num_bits):
        circuit.h(qubit)
    # Reversible oracle: for every input x, XOR f(x) into the output
    # register under a full control pattern on the input register.
    from repro.circuits.gates import X

    for x in range(size):
        value = table[x]
        if value == 0:
            continue
        positives = [
            q for q in range(num_bits) if (x >> (num_bits - 1 - q)) & 1
        ]
        negatives = [
            q for q in range(num_bits) if not (x >> (num_bits - 1 - q)) & 1
        ]
        for out_bit in range(num_bits):
            if (value >> (num_bits - 1 - out_bit)) & 1:
                circuit.append(
                    X,
                    num_bits + out_bit,
                    controls=positives,
                    negative_controls=negatives,
                )
    for qubit in range(num_bits):
        circuit.h(qubit)
    return circuit


def solve_simon_system(samples: Iterable[int], num_bits: int) -> List[int]:
    """All non-zero candidates ``s`` with ``y . s = 0`` for every sample.

    Gaussian elimination over GF(2); with ``n - 1`` independent samples
    exactly one candidate remains (the hidden period).
    """
    basis: List[int] = []
    for sample in samples:
        vector = sample
        for pivot in basis:
            vector = min(vector, vector ^ pivot)
        if vector:
            basis.append(vector)
            basis.sort(reverse=True)
    candidates = []
    for s in range(1, 1 << num_bits):
        if all(bin(y & s).count("1") % 2 == 0 for y in basis):
            candidates.append(s)
    return candidates
