r"""Ground State Estimation via quantum phase estimation (benchmark 3).

The paper's GSE benchmark [33] estimates the ground-state energy of a
molecular Hamiltonian via phase estimation; its "original description is
not directly compatible" with the exact representation because the
involved rotations have arbitrary angles, so the authors compiled it to
Clifford+T with Quipper.  We reproduce that pipeline with a synthetic
few-body Hamiltonian (DESIGN.md Section 3):

.. math::  H \;=\; \sum_j h_j Z_j \;+\; \sum_{i<j} J_{ij} Z_i Z_j

with deterministic irrational coefficients.  ``H`` is diagonal, so

* every computational basis state is an eigenstate (the ground state is
  the basis state of minimal energy), and
* the controlled evolutions ``c-U^{2^k}`` with ``U = e^{iHt}`` decompose
  exactly into controlled and doubly-controlled phase gates whose
  angles are irrational multiples of the coefficients -- the very gates
  that force the Clifford+T approximation.

:func:`gse_rotation_circuit` builds the raw rotation circuit (numeric
simulation only); :func:`gse_circuit` additionally passes it through
:func:`repro.approx.approximate_circuit`, yielding the Clifford+T
benchmark that *all* representations simulate -- mirroring the paper's
use of one Quipper-compiled circuit for every representation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.approx.clifford_t import approximate_circuit
from repro.circuits.circuit import Circuit
from repro.circuits.library import inverse_qft_circuit
from repro.errors import CircuitError

__all__ = [
    "DiagonalHamiltonian",
    "default_hamiltonian",
    "gse_rotation_circuit",
    "gse_circuit",
    "ground_state",
]


@dataclass(frozen=True)
class DiagonalHamiltonian:
    """``sum h_j Z_j + sum J_ij Z_i Z_j`` on ``num_sites`` qubits."""

    num_sites: int
    fields: Tuple[float, ...]
    couplings: Tuple[Tuple[int, int, float], ...]

    def energy(self, basis_index: int) -> float:
        """The eigenvalue of ``|basis_index>`` (Z eigenvalues +-1)."""

        def z(site: int) -> int:
            bit = (basis_index >> (self.num_sites - 1 - site)) & 1
            return 1 - 2 * bit  # |0> -> +1, |1> -> -1

        total = sum(h * z(j) for j, h in enumerate(self.fields))
        total += sum(strength * z(i) * z(j) for i, j, strength in self.couplings)
        return total

    def spectrum(self) -> List[float]:
        return [self.energy(index) for index in range(1 << self.num_sites)]


def default_hamiltonian(num_sites: int) -> DiagonalHamiltonian:
    """A deterministic pseudo-molecular Hamiltonian.

    Coefficients are irrational (golden-ratio based) so none of the
    evolution angles is a multiple of ``pi/4`` -- guaranteeing that the
    exact representation genuinely needs the Clifford+T approximation,
    as in the paper's GSE benchmark.
    """
    if num_sites < 1:
        raise CircuitError("Hamiltonian needs at least one site")
    golden = (1 + math.sqrt(5)) / 2
    fields = tuple(
        0.5 * math.cos(golden * (site + 1)) + 0.1 * (site + 1) / num_sites
        for site in range(num_sites)
    )
    couplings = tuple(
        (i, i + 1, 0.25 * math.sin(golden * (i + 2))) for i in range(num_sites - 1)
    )
    return DiagonalHamiltonian(num_sites=num_sites, fields=fields, couplings=couplings)


def ground_state(hamiltonian: DiagonalHamiltonian) -> Tuple[int, float]:
    """``(basis_index, energy)`` of the ground state."""
    spectrum = hamiltonian.spectrum()
    index = min(range(len(spectrum)), key=spectrum.__getitem__)
    return index, spectrum[index]


def _evolution(
    circuit: Circuit,
    hamiltonian: DiagonalHamiltonian,
    time: float,
    control: int,
    offset: int,
) -> None:
    """Append the controlled evolution ``c-exp(i H time)`` (exact for a
    diagonal ``H``: a product of controlled phase rotations).

    ``Z_j``-rotation: ``exp(i t h Z_j) = e^{i t h} P(-2 t h)`` on site j.
    We implement the relative-phase part with (multi-)controlled ``P``
    gates and fold the accumulated scalar phase into a ``P`` on the
    control qubit -- exactly phase-correct, which matters inside
    phase estimation.
    """
    scalar_phase = 0.0
    for site, field in enumerate(hamiltonian.fields):
        # exp(i t h Z) = diag(e^{ith}, e^{-ith}) = e^{ith} diag(1, e^{-2ith})
        scalar_phase += time * field
        circuit.cp(-2.0 * time * field, control, offset + site)
    for i, j, strength in hamiltonian.couplings:
        # exp(i t J Z_i Z_j) = e^{itJ} * diag phase -2tJ on odd parity.
        # With b_i xor b_j = b_i + b_j - 2 b_i b_j the relative phase
        # decomposes into two controlled-P and one doubly-controlled-P.
        scalar_phase += time * strength
        circuit.cp(-2.0 * time * strength, control, offset + i)
        circuit.cp(-2.0 * time * strength, control, offset + j)
        circuit.mcp(4.0 * time * strength, [control, offset + i], offset + j)
    if abs(scalar_phase) > 1e-15:
        circuit.p(scalar_phase, control)


def gse_rotation_circuit(
    num_sites: int = 3,
    precision_bits: int = 4,
    time: float = 0.5,
    hamiltonian: DiagonalHamiltonian = None,
    prepare_ground_state: bool = True,
) -> Circuit:
    """Phase estimation of ``exp(i H t)`` with raw rotation gates.

    Register layout: ``precision_bits`` ancilla qubits (most significant
    phase bit first), then ``num_sites`` system qubits.
    """
    if precision_bits < 1:
        raise CircuitError("phase estimation needs at least one precision bit")
    if hamiltonian is None:
        hamiltonian = default_hamiltonian(num_sites)
    if hamiltonian.num_sites != num_sites:
        raise CircuitError("Hamiltonian size does not match num_sites")
    total = precision_bits + num_sites
    circuit = Circuit(total, name=f"gse_{num_sites}s_{precision_bits}b")
    offset = precision_bits
    if prepare_ground_state:
        index, _ = ground_state(hamiltonian)
        for site in range(num_sites):
            if (index >> (num_sites - 1 - site)) & 1:
                circuit.x(offset + site)
    for ancilla in range(precision_bits):
        circuit.h(ancilla)
    for ancilla in range(precision_bits):
        # Ancilla 0 is the most significant bit: it controls U^(2^(m-1)).
        repetitions = 1 << (precision_bits - 1 - ancilla)
        _evolution(circuit, hamiltonian, time * repetitions, ancilla, offset)
    # Inverse QFT on the ancilla register (embedded in the full width).
    iqft = inverse_qft_circuit(precision_bits)
    for operation in iqft:
        circuit.append(
            operation.gate,
            operation.target,
            controls=operation.controls,
            negative_controls=operation.negative_controls,
        )
    return circuit


def gse_circuit(
    num_sites: int = 3,
    precision_bits: int = 4,
    time: float = 0.5,
    hamiltonian: DiagonalHamiltonian = None,
    max_words: int = 20000,
    max_length: int = 22,
) -> Circuit:
    """The Clifford+T-compiled GSE benchmark (the paper's pipeline)."""
    rotation = gse_rotation_circuit(
        num_sites=num_sites,
        precision_bits=precision_bits,
        time=time,
        hamiltonian=hamiltonian,
    )
    compiled = approximate_circuit(rotation, max_words=max_words, max_length=max_length)
    compiled.name = f"gse_ct_{num_sites}s_{precision_bits}b"
    return compiled
