r"""Grover's database-search algorithm [2] (paper benchmark 1).

The circuit is built entirely from exactly representable gates
(H, X and multi-controlled Z), so -- as the paper notes for its Grover
benchmark -- "all quantum gates and complex numbers occurring during the
computation are exactly representable by the proposed algebraic
approach".

Construction
------------
* uniform superposition: a Hadamard on every data qubit;
* phase oracle for the marked element ``x*``: a multi-controlled Z whose
  controls are negated (via X conjugation) on the zero bits of ``x*``;
* diffusion operator: ``H^n X^n (MCZ) X^n H^n``.

The optimal iteration count is ``round(pi/4 * sqrt(2^n))``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.circuits.circuit import Circuit
from repro.errors import CircuitError

__all__ = [
    "grover_circuit",
    "grover_oracle",
    "grover_diffusion",
    "optimal_iterations",
    "success_probability_bound",
]


def optimal_iterations(num_qubits: int) -> int:
    """The standard ``round(pi/4 sqrt(N))`` iteration count (>= 1)."""
    return max(1, round(math.pi / 4 * math.sqrt(2**num_qubits)))


def grover_oracle(num_qubits: int, marked: int) -> Circuit:
    """Phase oracle flipping the sign of ``|marked>``."""
    if not 0 <= marked < (1 << num_qubits):
        raise CircuitError(f"marked element {marked} out of range")
    circuit = Circuit(num_qubits, name=f"oracle_{marked}")
    zero_bits = [
        qubit for qubit in range(num_qubits)
        if not (marked >> (num_qubits - 1 - qubit)) & 1
    ]
    for qubit in zero_bits:
        circuit.x(qubit)
    circuit.mcz(list(range(num_qubits - 1)), num_qubits - 1)
    for qubit in zero_bits:
        circuit.x(qubit)
    return circuit


def grover_diffusion(num_qubits: int) -> Circuit:
    """The inversion-about-the-mean operator."""
    circuit = Circuit(num_qubits, name="diffusion")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for qubit in range(num_qubits):
        circuit.x(qubit)
    circuit.mcz(list(range(num_qubits - 1)), num_qubits - 1)
    for qubit in range(num_qubits):
        circuit.x(qubit)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    return circuit


def grover_circuit(
    num_qubits: int, marked: int, iterations: Optional[int] = None
) -> Circuit:
    """The full Grover circuit searching for ``|marked>``.

    With ``iterations=None`` the optimal count is used, after which the
    marked element is measured with probability close to 1.
    """
    if num_qubits < 2:
        raise CircuitError("Grover needs at least 2 qubits to be meaningful")
    if iterations is None:
        iterations = optimal_iterations(num_qubits)
    circuit = Circuit(num_qubits, name=f"grover_{num_qubits}q_m{marked}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    oracle = grover_oracle(num_qubits, marked)
    diffusion = grover_diffusion(num_qubits)
    for _ in range(iterations):
        circuit.extend(oracle)
        circuit.extend(diffusion)
    return circuit


def success_probability_bound(num_qubits: int, iterations: int) -> float:
    """Closed-form success probability ``sin^2((2k+1) theta)`` with
    ``sin(theta) = 1/sqrt(N)`` -- used by tests to validate simulations."""
    theta = math.asin(1 / math.sqrt(2**num_qubits))
    return math.sin((2 * iterations + 1) * theta) ** 2
