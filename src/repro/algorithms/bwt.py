r"""The Binary Welded Tree quantum-walk benchmark [38] (paper benchmark 2).

Two complete binary trees of equal depth are "welded" at their leaves by
two random perfect matchings that form a single alternating cycle --
the graph on which Childs et al. proved an exponential quantum walk
speed-up.  Following the paper, the benchmark circuit uses only exactly
representable gates (H, X, CX and multi-controlled X), so the algebraic
QMDD simulates it without any approximation.

Substitution note (DESIGN.md Section 3): the paper simulated Quipper's
BWT oracle circuit; we build the walk programmatically instead -- a
discrete-time *coined* walk over a proper 4-edge-colouring of the
welded tree:

* the vertex register holds a binary vertex label,
* a 2-qubit coin register selects one of the 4 edge colours,
* each step applies ``H`` on the coin followed by, per colour, the
  colour's partial matching as a controlled basis permutation
  (flag-ancilla construction: two multi-controlled X's mark
  "register is one of the matched pair", the label bits that differ are
  flipped under flag+coin control, then the flag is uncomputed).

The circuit is a genuine reversible implementation of the welded-tree
adjacency structure with the same DD-relevant characteristics as the
original benchmark: thousands of Clifford-only gates over an
exponentially structured, redundancy-rich state space.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import networkx as nx

from repro.circuits.circuit import Circuit
from repro.errors import CircuitError

__all__ = [
    "welded_tree_graph",
    "edge_colouring",
    "bwt_circuit",
    "bwt_register_sizes",
]


def welded_tree_graph(depth: int, seed: int = 0) -> Tuple[nx.Graph, int, int]:
    """Build a welded binary tree.

    Returns ``(graph, entrance, exit)`` where the vertices are integers
    (entrance = 0) and every node carries ``tree`` ('A'/'B') and
    ``depth`` attributes; every edge carries a ``colour`` in ``0..3``
    forming a proper edge colouring.

    ``depth`` is the number of edge layers per tree (depth 2 means 7
    vertices per tree).
    """
    if depth < 1:
        raise CircuitError("welded tree depth must be at least 1")
    rng = random.Random(seed)
    graph = nx.Graph()
    next_id = 0

    def build_tree(tag: str) -> List[List[int]]:
        """Create one complete binary tree; returns vertices per level."""
        nonlocal next_id
        levels: List[List[int]] = []
        for level in range(depth + 1):
            vertices = []
            for _ in range(1 << level):
                graph.add_node(next_id, tree=tag, depth=level)
                vertices.append(next_id)
                next_id += 1
            levels.append(vertices)
        for level in range(depth):
            for index, parent in enumerate(levels[level]):
                for child_side in (0, 1):
                    child = levels[level + 1][2 * index + child_side]
                    # Colour pairs alternate with the child's distance
                    # from the leaves so that leaf edges use {0, 1},
                    # keeping {2, 3} free for the weld.
                    pair = (depth - (level + 1)) % 2
                    graph.add_edge(parent, child, colour=2 * pair + child_side)
        return levels

    levels_a = build_tree("A")
    levels_b = build_tree("B")
    entrance = levels_a[0][0]
    exit_vertex = levels_b[0][0]

    leaves_a = levels_a[depth]
    leaves_b = levels_b[depth]
    # Two perfect matchings forming one alternating cycle:
    # a_0 - b_{p(0)} - a_1 - b_{p(1)} - ... - a_0.
    permutation = list(range(len(leaves_b)))
    rng.shuffle(permutation)
    order_a = list(range(len(leaves_a)))
    rng.shuffle(order_a)
    for position, a_index in enumerate(order_a):
        graph.add_edge(
            leaves_a[a_index], leaves_b[permutation[position]], colour=2
        )
        graph.add_edge(
            leaves_a[order_a[(position + 1) % len(order_a)]],
            leaves_b[permutation[position]],
            colour=3,
        )
    return graph, entrance, exit_vertex


def edge_colouring(graph: nx.Graph) -> Dict[int, List[Tuple[int, int]]]:
    """Group edges by colour; each class is a partial matching."""
    matchings: Dict[int, List[Tuple[int, int]]] = {0: [], 1: [], 2: [], 3: []}
    for u, v, data in graph.edges(data=True):
        matchings[data["colour"]].append((u, v))
    # Sanity: a colour class must never touch a vertex twice.
    for colour, pairs in matchings.items():
        touched = [vertex for pair in pairs for vertex in pair]
        if len(touched) != len(set(touched)):
            raise CircuitError(f"colour {colour} is not a matching")
    return matchings


def bwt_register_sizes(depth: int) -> Tuple[int, int, int]:
    """``(vertex_bits, coin_bits, ancilla_bits)`` for a given depth."""
    vertex_count = 2 * ((1 << (depth + 1)) - 1)
    vertex_bits = max(1, (vertex_count - 1).bit_length())
    return vertex_bits, 2, 1


def bwt_circuit(depth: int, steps: int, seed: int = 0) -> Circuit:
    """The coined-walk benchmark circuit.

    Register layout (qubit 0 first): ``vertex_bits`` label qubits,
    2 coin qubits, 1 flag ancilla.  The walk starts at the entrance
    (label 0 = the all-zero initial state).
    """
    if steps < 1:
        raise CircuitError("need at least one walk step")
    graph, _, _ = welded_tree_graph(depth, seed)
    matchings = edge_colouring(graph)
    vertex_bits, coin_bits, _ = bwt_register_sizes(depth)
    total = vertex_bits + coin_bits + 1
    coin = [vertex_bits, vertex_bits + 1]
    flag = vertex_bits + 2
    circuit = Circuit(total, name=f"bwt_d{depth}_s{steps}")

    def label_controls(label: int) -> Tuple[List[int], List[int]]:
        positives, negatives = [], []
        for bit in range(vertex_bits):
            qubit = bit  # qubit 0 = most significant label bit
            if (label >> (vertex_bits - 1 - bit)) & 1:
                positives.append(qubit)
            else:
                negatives.append(qubit)
        return positives, negatives

    def apply_matching(colour: int, pairs: List[Tuple[int, int]]) -> None:
        coin_positive = [coin[i] for i in range(2) if (colour >> (1 - i)) & 1]
        coin_negative = [coin[i] for i in range(2) if not (colour >> (1 - i)) & 1]
        for v, u in pairs:
            from repro.circuits.gates import X

            pos_v, neg_v = label_controls(v)
            pos_u, neg_u = label_controls(u)
            difference = v ^ u
            flip_bits = [
                bit for bit in range(vertex_bits)
                if (difference >> (vertex_bits - 1 - bit)) & 1
            ]
            # Mark "label is v or u" on the flag ancilla ...
            circuit.append(X, flag, controls=pos_v, negative_controls=neg_v)
            circuit.append(X, flag, controls=pos_u, negative_controls=neg_u)
            # ... swap the pair's labels when the coin shows this colour ...
            for bit in flip_bits:
                circuit.append(
                    X,
                    bit,
                    controls=[flag] + coin_positive,
                    negative_controls=coin_negative,
                )
            # ... and uncompute the flag (the set {v, u} is invariant).
            circuit.append(X, flag, controls=pos_v, negative_controls=neg_v)
            circuit.append(X, flag, controls=pos_u, negative_controls=neg_u)

    for _ in range(steps):
        circuit.h(coin[0])
        circuit.h(coin[1])
        for colour in range(4):
            apply_matching(colour, matchings[colour])
    return circuit
