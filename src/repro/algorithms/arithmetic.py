r"""Reversible arithmetic circuits: ripple-carry and QFT adders.

Two classic adders that sit on opposite sides of the paper's
exactness boundary:

* the **Cuccaro ripple-carry adder** is purely classical-reversible
  (CX/CCX), hence exactly representable -- the algebraic QMDD simulates
  it without any approximation;
* the **Draper QFT adder** uses controlled phase rotations
  ``pi/2^k`` which leave ``D[omega]`` for ``k >= 3`` -- the natural
  "real workload" companion to the paper's GSE benchmark, requiring
  Clifford+T approximation for exact simulation.

Both compute ``|a>|b> -> |a>|a + b mod 2^n>`` on matching registers, so
they make a meaningful cross-verification pair.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import Circuit
from repro.circuits.library import inverse_qft_circuit, qft_circuit
from repro.errors import CircuitError

__all__ = [
    "cuccaro_adder",
    "draper_adder",
    "decode_cuccaro",
    "decode_draper",
    "encode_cuccaro",
    "encode_draper",
]


def cuccaro_adder(num_bits: int) -> Circuit:
    """In-place modular ripple-carry adder ``b <- a + b mod 2^n``.

    Register layout (qubit 0 first): ``a`` (``num_bits`` qubits, MSB
    first), ``b`` (``num_bits`` qubits, MSB first), one borrowed-zero
    carry ancilla (returned to ``|0>``).

    Uses the MAJ/UMA construction of Cuccaro et al.; the carry-out is
    dropped (modular addition), which removes the top CNOT of the
    original circuit.
    """
    if num_bits < 1:
        raise CircuitError("adder needs at least one bit")
    total = 2 * num_bits + 1
    circuit = Circuit(total, name=f"cuccaro_{num_bits}b")
    carry = total - 1

    def a_bit(i: int) -> int:  # i = 0 is the LSB
        return num_bits - 1 - i

    def b_bit(i: int) -> int:
        return 2 * num_bits - 1 - i

    def maj(c: int, b: int, a: int) -> None:
        circuit.cx(a, b)
        circuit.cx(a, c)
        circuit.ccx(c, b, a)

    def uma(c: int, b: int, a: int) -> None:
        circuit.ccx(c, b, a)
        circuit.cx(a, c)
        circuit.cx(c, b)

    chain = [carry] + [a_bit(i) for i in range(num_bits)]
    for i in range(num_bits):
        maj(chain[i], b_bit(i), chain[i + 1])
    for i in reversed(range(num_bits)):
        uma(chain[i], b_bit(i), chain[i + 1])
    return circuit


def draper_adder(num_bits: int) -> Circuit:
    """Draper's transform adder ``b <- a + b mod 2^n`` (no ancilla).

    Register layout: ``a`` then ``b`` (both MSB first).  The adder
    conjugates phase additions with the QFT on ``b``; rotation angles
    ``pi / 2^k`` with ``k >= 3`` make the circuit inexact for
    ``num_bits >= 3`` -- pass it through
    :func:`repro.approx.approximate_circuit` for algebraic simulation.
    """
    if num_bits < 1:
        raise CircuitError("adder needs at least one bit")
    total = 2 * num_bits
    circuit = Circuit(total, name=f"draper_{num_bits}b")
    # QFT on the b register (no swaps; phases are register-symmetric).
    qft = qft_circuit(num_bits, include_swaps=False)
    for operation in qft:
        circuit.append(
            operation.gate,
            num_bits + operation.target,
            controls=tuple(num_bits + c for c in operation.controls),
        )
    # Controlled phase additions from a onto the Fourier-space b.
    for b_index in range(num_bits):       # target b qubit (MSB first)
        for a_index in range(num_bits):   # controlling a qubit
            # phase pi / 2^(a_index - b_index) wraps mod 2 pi; only
            # non-trivial when the shift is in range.
            k = a_index - b_index
            if k < 0:
                continue
            circuit.cp(math.pi / (1 << k), a_index, num_bits + b_index)
    iqft = inverse_qft_circuit(num_bits, include_swaps=False)
    for operation in iqft:
        circuit.append(
            operation.gate,
            num_bits + operation.target,
            controls=tuple(num_bits + c for c in operation.controls),
        )
    return circuit


def decode_cuccaro(basis_index: int, num_bits: int):
    """``(a, b, carry)`` from a basis index of :func:`cuccaro_adder`."""
    total = 2 * num_bits + 1
    bits = [(basis_index >> (total - 1 - q)) & 1 for q in range(total)]
    a = int("".join(map(str, bits[:num_bits])), 2)
    b = int("".join(map(str, bits[num_bits : 2 * num_bits])), 2)
    return a, b, bits[-1]


def encode_cuccaro(a: int, b: int, num_bits: int) -> int:
    """Basis index preparing ``|a>|b>|0>`` for :func:`cuccaro_adder`."""
    return ((a << num_bits) | b) << 1


def decode_draper(basis_index: int, num_bits: int):
    """``(a, b)`` from a basis index of :func:`draper_adder`."""
    b = basis_index & ((1 << num_bits) - 1)
    a = basis_index >> num_bits
    return a, b


def encode_draper(a: int, b: int, num_bits: int) -> int:
    return (a << num_bits) | b
