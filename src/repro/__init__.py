r"""repro -- algebraic vs numerical decision diagrams for quantum computation.

A from-scratch reproduction of

    P. Niemann, A. Zulehner, R. Drechsler, R. Wille:
    "Accuracy and Compactness in Decision Diagrams for Quantum
    Computation" (DATE 2019; extended TCAD version "Overcoming the
    Trade-off between Accuracy and Compactness ...").

The package provides

* exact cyclotomic arithmetic (:mod:`repro.rings`): ``Z[omega]``,
  ``D[omega]``, ``Q[omega]`` with canonical forms, inverses and GCDs;
* a QMDD decision-diagram engine (:mod:`repro.dd`) generic over the
  edge-weight number system -- floating point with an ``eps`` tolerance
  (the state of the art the paper critiques) or the exact algebraic
  representations the paper proposes (Algorithms 1-3);
* a quantum-circuit substrate (:mod:`repro.circuits`) with exact
  Clifford+T gate matrices, a simulator (:mod:`repro.sim`), DD-based
  equivalence checking (:mod:`repro.verify`), and a Clifford+T
  compiler for arbitrary rotations (:mod:`repro.approx`);
* the paper's benchmark algorithms (:mod:`repro.algorithms`: Grover,
  Binary Welded Tree, GSE phase estimation) and the evaluation harness
  regenerating its figures (:mod:`repro.evalsuite`).

Quickstart (the :mod:`repro.api` facade is the documented surface)::

    from repro import Circuit, RunRequest, SimulatorConfig, run

    circuit = Circuit(2).h(0).cx(0, 1)
    result = run(RunRequest(circuit, SimulatorConfig(system="algebraic")))
    print(result.node_count, result.is_zero_state)

Sweeps fan out over a process pool with :func:`repro.run_batch`; see
``docs/API.md``.
"""

from repro.api import RunRequest, RunResult, SimulatorConfig, run, run_batch
from repro.circuits.circuit import Circuit, Operation
from repro.dd.manager import (
    DDManager,
    algebraic_gcd_manager,
    algebraic_manager,
    numeric_manager,
)
from repro.rings import Dyadic, DOmega, QOmega, ZOmega, ZSqrt2
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.statevector import StatevectorSimulator
from repro.verify.equivalence import check_equivalence, check_state_equivalence

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "DDManager",
    "DOmega",
    "Dyadic",
    "Operation",
    "QOmega",
    "RunRequest",
    "RunResult",
    "SimulationResult",
    "Simulator",
    "SimulatorConfig",
    "StatevectorSimulator",
    "ZOmega",
    "ZSqrt2",
    "__version__",
    "algebraic_gcd_manager",
    "algebraic_manager",
    "check_equivalence",
    "check_state_equivalence",
    "numeric_manager",
    "run",
    "run_batch",
]
