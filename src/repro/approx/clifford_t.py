r"""Clifford+T approximation of arbitrary rotations.

The paper's GSE benchmark contains rotations by arbitrary angles whose
matrix entries lie outside ``D[omega]``; the authors preprocessed it
with Quipper [39] into circuits "consisting solely of (exactly
representable) Clifford+T gates".  This module is our substitution for
that step (DESIGN.md Section 3).

Pipeline
--------
1. **Control elimination.**  A (multi-)controlled phase rotation is an
   exact product of CX gates and *uncontrolled* phase gates via the
   half-angle identity ``theta*a*b = theta/2*(a + b - (a xor b))``,
   applied recursively over the control count.  This matters because
   the determinant of every Clifford+T unitary is a power of ``omega``
   -- a phase-exact approximation of ``diag(1, e^{i theta})`` is
   bounded below by ``|e^{i theta} - omega^k|``, while an uncontrolled
   gate only needs approximation *up to global phase*, which Clifford+T
   words can do arbitrarily well.
2. **Word search.**  A breadth-first database of distinct ``{H, T}``
   words (deduplicated exactly via their ``D[omega]`` matrices) is
   searched for the best phase-insensitive Frobenius match; a
   meet-in-the-middle pass over word *pairs* squares the effective
   search depth.  The returned word realises an exact ``D[omega]``
   unitary whose denominator exponents grow with its T-count --
   precisely the mechanism behind the paper's Fig. 5 observation that
   algebraic GSE simulation pays for growing integer bit-widths.

This is *not* an epsilon-optimal synthesiser like gridsynth; the
approximation error per rotation is around ``10^-2`` to ``10^-3`` for
the default budget.  That shifts the numerical error floor of the
compiled circuit but not the size/run-time shapes the evaluation
reproduces.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.circuits.circuit import Circuit, Operation
from repro.circuits.gates import GateDef, H, S, SDG, STANDARD_GATES, T
from repro.errors import ApproximationError

__all__ = [
    "ApproximationResult",
    "approximate_phase",
    "approximate_circuit",
    "decompose_controlled_phase",
    "word_database_size",
]

# The exact 2x2 D[omega] matrices of the BFS generators.
_GENERATORS = {"h": H.exact, "t": T.exact}


def _mat_mul(left, right):
    l00, l01, l10, l11 = left
    r00, r01, r10, r11 = right
    return (
        l00 * r00 + l01 * r10,
        l00 * r01 + l01 * r11,
        l10 * r00 + l11 * r10,
        l10 * r01 + l11 * r11,
    )


def _key(matrix) -> Tuple:
    return tuple(entry.key() for entry in matrix)


@dataclass(frozen=True)
class ApproximationResult:
    """A Clifford+T word approximating a target single-qubit unitary.

    ``error`` is the global-phase-insensitive Frobenius distance
    ``min_phi || e^{i phi} W - target ||_F``.
    """

    gates: Tuple[GateDef, ...]
    error: float
    t_count: int

    def as_circuit(self, target: int = 0, num_qubits: int = 1) -> Circuit:
        circuit = Circuit(num_qubits, name="clifford_t_word")
        for gate in self.gates:
            circuit.append(gate, target)
        return circuit


class _WordDatabase:
    """All distinct ``{H, T}``-word unitaries up to a node budget."""

    def __init__(self, max_words: int, max_length: int) -> None:
        from repro.rings.domega import DOmega

        identity = (DOmega.one(), DOmega.zero(), DOmega.zero(), DOmega.one())
        self.words: List[Tuple[str, ...]] = [()]
        self.matrices = [identity]
        seen = {_key(identity)}
        frontier = [((), identity)]
        length = 0
        while frontier and len(self.words) < max_words and length < max_length:
            length += 1
            next_frontier = []
            for word, matrix in frontier:
                for name, generator in _GENERATORS.items():
                    new_word = word + (name,)
                    new_matrix = _mat_mul(generator, matrix)  # gate applied last
                    key = _key(new_matrix)
                    if key in seen:
                        continue
                    seen.add(key)
                    self.words.append(new_word)
                    self.matrices.append(new_matrix)
                    next_frontier.append((new_word, new_matrix))
                    if len(self.words) >= max_words:
                        break
                if len(self.words) >= max_words:
                    break
            frontier = next_frontier
        self.dense = np.array(
            [[entry.to_complex() for entry in matrix] for matrix in self.matrices],
            dtype=complex,
        )

    @staticmethod
    def _phase_free_error(overlap_magnitude: float) -> float:
        """``min_phi || e^{i phi} U - T ||_F = sqrt(4 - 2 |tr(U^dag T)|)``."""
        return math.sqrt(max(0.0, 4.0 - 2.0 * overlap_magnitude))

    def closest(self, target: np.ndarray) -> Tuple[int, float]:
        """Best single word under the phase-insensitive metric."""
        flat_conj = self.dense.conj()
        overlaps = np.abs(flat_conj @ target.reshape(4))
        index = int(np.argmax(overlaps))
        return index, self._phase_free_error(float(overlaps[index]))

    def closest_pair(self, target: np.ndarray) -> Tuple[int, int, float]:
        """Meet-in-the-middle over word pairs ``U_i @ V_j``.

        ``tr(V^dag U^dag T)`` reduces to one complex Gram matrix; the
        argmax of its modulus gives the phase-optimal pair.  Computed in
        row chunks to bound memory.
        """
        u = self.dense.reshape(-1, 2, 2)
        m = np.einsum("nji,jk->nik", u.conj(), target).reshape(-1, 4)
        v_conj = self.dense.conj()
        best = (-np.inf, 0, 0)
        chunk = 512
        for start in range(0, m.shape[0], chunk):
            overlaps = np.abs(m[start : start + chunk] @ v_conj.T)
            flat_index = int(np.argmax(overlaps))
            row, col = divmod(flat_index, overlaps.shape[1])
            value = float(overlaps[row, col])
            if value > best[0]:
                best = (value, start + row, col)
        return best[1], best[2], self._phase_free_error(best[0])


_DATABASES: Dict[Tuple[int, int], _WordDatabase] = {}
_PHASE_CACHE: Dict[Tuple[float, int, int], ApproximationResult] = {}


def _database(max_words: int, max_length: int) -> _WordDatabase:
    key = (max_words, max_length)
    database = _DATABASES.get(key)
    if database is None:
        database = _WordDatabase(max_words, max_length)
        _DATABASES[key] = database
    return database


def word_database_size(max_words: int = 8000, max_length: int = 22) -> int:
    """Number of distinct word unitaries in the (cached) database."""
    return len(_database(max_words, max_length).words)


def approximate_phase(
    theta: float,
    max_words: int = 8000,
    max_length: int = 22,
) -> ApproximationResult:
    """Approximate ``P(theta) = diag(1, e^{i theta})`` up to global phase.

    Multiples of ``pi/4`` are returned exactly (a run of ``T`` gates).
    """
    ratio = theta / (math.pi / 4)
    nearest = round(ratio)
    if abs(ratio - nearest) < 1e-12:
        count = nearest % 8
        return ApproximationResult(gates=(T,) * count, error=0.0, t_count=count)
    cache_key = (theta, max_words, max_length)
    cached = _PHASE_CACHE.get(cache_key)
    if cached is not None:
        return cached
    target = np.array([[1.0, 0.0], [0.0, cmath.exp(1j * theta)]], dtype=complex)
    database = _database(max_words, max_length)
    single, single_error = database.closest(target)
    left, right, pair_error = database.closest_pair(target)
    if single_error <= pair_error:
        word = database.words[single]
        error = single_error
    else:
        # target ~ U_left @ V_right: V's word is applied first.
        word = database.words[right] + database.words[left]
        error = pair_error
    result = ApproximationResult(
        gates=tuple(STANDARD_GATES[name] for name in word),
        error=error,
        t_count=sum(1 for name in word if name == "t"),
    )
    _PHASE_CACHE[cache_key] = result
    return result


# ---------------------------------------------------------------------------
# Control elimination
# ---------------------------------------------------------------------------


def decompose_controlled_phase(
    num_qubits: int,
    theta: float,
    controls: Tuple[int, ...],
    target: int,
) -> Circuit:
    """Exactly rewrite ``C^n P(theta)`` into CX gates and bare ``P``.

    Uses the half-angle identity recursively: for one control,

        cP(theta)(c, t) = P(theta/2)(c) P(theta/2)(t)
                          CX(c,t) P(-theta/2)(t) CX(c,t)

    and for ``n`` controls the same identity conditioned on the first
    ``n - 1`` controls (the CX gates need no condition -- they cancel
    when the phases are disabled).  Gate count grows as ``3^n``, which
    is fine for the two-control gates of the GSE benchmark.
    """
    circuit = Circuit(num_qubits, name="ctrl_phase")
    _append_controlled_phase(circuit, theta, tuple(controls), target)
    return circuit


def _append_controlled_phase(
    circuit: Circuit, theta: float, controls: Tuple[int, ...], target: int
) -> None:
    from repro.circuits.gates import phase_gate

    if not controls:
        circuit.p(theta, target)
        return
    rest = controls[:-1]
    last = controls[-1]
    _append_controlled_phase(circuit, theta / 2, rest, last)
    _append_controlled_phase(circuit, theta / 2, rest, target)
    circuit.cx(last, target)
    _append_controlled_phase(circuit, -theta / 2, rest, target)
    circuit.cx(last, target)


# ---------------------------------------------------------------------------
# Whole-circuit compilation
# ---------------------------------------------------------------------------


def approximate_circuit(
    circuit: Circuit,
    max_words: int = 8000,
    max_length: int = 22,
) -> Circuit:
    """Compile every non-Clifford+T gate to an approximating word.

    Supported inexact gates: ``p``, ``rz``, ``rx``, ``ry`` with any
    number of positive controls.  Controlled phases are first rewritten
    exactly into CX + bare phases (see
    :func:`decompose_controlled_phase`), then each bare phase is
    approximated up to global phase.  Exactly representable gates pass
    through untouched.
    """
    compiled = Circuit(circuit.num_qubits, name=f"{circuit.name}_clifford_t")
    for operation in circuit:
        if operation.gate.is_exactly_representable:
            compiled.operations.append(operation)
            continue
        for replacement in _expand(operation, circuit.num_qubits, max_words, max_length):
            compiled.operations.append(replacement)
    return compiled


def _expand(
    operation: Operation, num_qubits: int, max_words: int, max_length: int
) -> List[Operation]:
    gate = operation.gate
    if operation.negative_controls:
        raise ApproximationError(
            "negative controls on inexact gates are not supported; "
            "conjugate with X gates first"
        )
    name = gate.name
    if name == "p":
        return _phase_family(
            num_qubits, gate.params[0], operation.controls, operation.target,
            max_words, max_length,
        )
    if name == "rz":
        # rz(theta) = e^{-i theta/2} p(theta).  Uncontrolled: the global
        # phase is irrelevant.  Controlled: c-rz = c-p(theta) followed by
        # p(-theta/2) on the *controls* (one level down).
        theta = gate.params[0]
        operations = _phase_family(
            num_qubits, theta, operation.controls, operation.target, max_words, max_length
        )
        if operation.controls:
            operations += _phase_family(
                num_qubits, -theta / 2, operation.controls[:-1],
                operation.controls[-1], max_words, max_length,
            )
        return operations
    if name == "rx":
        # rx = H rz H (the H sandwich keeps the controls).
        sandwich = Operation(H, operation.target, operation.controls)
        inner = _expand(
            Operation(_rz_of(gate), operation.target, operation.controls),
            num_qubits, max_words, max_length,
        )
        return [sandwich] + inner + [sandwich]
    if name == "ry":
        # ry = S rx S^dagger.
        inner = _expand(
            Operation(_rx_of(gate), operation.target, operation.controls),
            num_qubits, max_words, max_length,
        )
        return (
            [Operation(SDG, operation.target, operation.controls)]
            + inner
            + [Operation(S, operation.target, operation.controls)]
        )
    raise ApproximationError(
        f"cannot Clifford+T-approximate gate {name!r}; decompose it into "
        "p/rz/rx/ry gates first"
    )


def _phase_family(
    num_qubits: int,
    theta: float,
    controls: Tuple[int, ...],
    target: int,
    max_words: int,
    max_length: int,
) -> List[Operation]:
    """Controlled phase -> CX + bare phases -> approximating words."""
    skeleton = decompose_controlled_phase(num_qubits, theta, controls, target)
    operations: List[Operation] = []
    for op in skeleton:
        if op.gate.is_exactly_representable:
            operations.append(op)
            continue
        word = approximate_phase(op.gate.params[0], max_words, max_length)
        operations.extend(Operation(g, op.target) for g in word.gates)
    return operations


def _rz_of(gate: GateDef) -> GateDef:
    from repro.circuits.gates import rz_gate

    return rz_gate(gate.params[0])


def _rx_of(gate: GateDef) -> GateDef:
    from repro.circuits.gates import rx_gate

    return rx_gate(gate.params[0])
