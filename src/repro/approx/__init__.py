"""Clifford+T approximation of arbitrary rotations (Quipper substitute)."""

from repro.approx.clifford_t import (
    ApproximationResult,
    approximate_circuit,
    approximate_phase,
    word_database_size,
)

__all__ = [
    "ApproximationResult",
    "approximate_circuit",
    "approximate_phase",
    "word_database_size",
]
