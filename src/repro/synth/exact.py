r"""Exact synthesis of single-qubit Clifford+T circuits.

The paper leans on Giles/Selinger [8]: a unitary is *exactly*
implementable by Clifford+T gates iff its entries lie in
:math:`\mathbb{D}[\omega]`.  This module implements the constructive
direction for one qubit -- given an exact unitary
:class:`~repro.rings.matrix2.Matrix2`, produce an ``{H, T}`` word whose
product *equals* it (up to an explicit ``omega^k`` global phase).

Algorithm (Kliuchnikov-Maslov-Mosca style sde reduction):

1. while the *smallest denominator exponent* (sde) of the matrix is
   large, peel a gate ``T^j H`` from the left -- for a unit-norm
   :math:`\mathbb{D}[\omega]` column with sde ``k >= 4`` there is
   always a ``j`` with ``sde(H T^{-j} v) = k - 1``;
2. the finitely many remainders with small sde are resolved against a
   breadth-first lookup table of exact word matrices (the same exact
   hash-consing as the approximation database), together with a global
   ``omega^k`` phase adjustment.

The synthesis is *exact*: re-multiplying the returned word reproduces
the input matrix in the ring, coefficient for coefficient.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ApproximationError, RingError
from repro.rings.domega import DOmega
from repro.rings.matrix2 import Matrix2

__all__ = ["synthesize_exact", "word_to_matrix", "SynthesisResult"]

_H = Matrix2.hadamard()
_T = Matrix2.t_gate()
_T_DAGGER = Matrix2(
    DOmega.one(), DOmega.zero(), DOmega.zero(), DOmega.omega_power(7)
)

class SynthesisResult:
    """An exact factorisation ``U = omega^phase * (product of gates)``.

    ``gates`` is in circuit order (first gate applied first).
    """

    __slots__ = ("gates", "phase_exponent")

    def __init__(self, gates: Tuple[str, ...], phase_exponent: int) -> None:
        self.gates = gates
        self.phase_exponent = phase_exponent

    @property
    def t_count(self) -> int:
        return sum(1 for gate in self.gates if gate == "t")

    def to_matrix(self) -> Matrix2:
        """Re-multiply (including the phase) -- must equal the input."""
        matrix = word_to_matrix(self.gates)
        return matrix * DOmega.omega_power(self.phase_exponent)

    def __repr__(self) -> str:
        return (
            f"SynthesisResult(gates={''.join(self.gates) or 'identity'}, "
            f"phase=omega^{self.phase_exponent})"
        )


def word_to_matrix(gates: Tuple[str, ...]) -> Matrix2:
    """Multiply a circuit-order ``h``/``t`` word into its exact matrix."""
    matrix = Matrix2.identity()
    for name in gates:
        if name == "h":
            matrix = _H @ matrix
        elif name == "t":
            matrix = _T @ matrix
        else:
            raise ValueError(f"unsupported gate {name!r} in word")
    return matrix


# Base-case lookup: all word matrices up to a fixed BFS budget, keyed by
# their exact canonical entries.  Words are stored in *matrix* order.
_BASE_TABLE: Dict[Tuple, Tuple[str, ...]] = {}
_BASE_LIMITS = (6000, 20)


def _base_table() -> Dict[Tuple, Tuple[str, ...]]:
    if _BASE_TABLE:
        return _BASE_TABLE
    max_words, max_length = _BASE_LIMITS
    identity = Matrix2.identity()
    _BASE_TABLE[identity.key()] = ()
    frontier = [((), identity)]
    length = 0
    while frontier and len(_BASE_TABLE) < max_words and length < max_length:
        length += 1
        next_frontier = []
        for word, matrix in frontier:
            for name, generator in (("h", _H), ("t", _T)):
                # matrix order: appending on the right of the word means
                # multiplying on the right of the product.
                new_word = word + (name,)
                new_matrix = matrix @ generator
                key = new_matrix.key()
                if key in _BASE_TABLE:
                    continue
                _BASE_TABLE[key] = new_word
                next_frontier.append((new_word, new_matrix))
                if len(_BASE_TABLE) >= max_words:
                    break
            if len(_BASE_TABLE) >= max_words:
                break
        frontier = next_frontier
    return _BASE_TABLE


def _lookup_with_phase(matrix: Matrix2) -> Tuple[Tuple[str, ...], int]:
    """Find ``matrix = omega^p * word`` in the base table, or raise."""
    table = _base_table()
    for phase in range(8):
        adjusted = matrix * DOmega.omega_power((-phase) % 8)
        word = table.get(adjusted.key())
        if word is not None:
            return (word, phase)
    raise ApproximationError(
        "exact synthesis base case not found; the matrix may lie outside "
        "the <H, T> group orbit covered by the lookup table"
    )


def synthesize_exact(matrix: Matrix2) -> SynthesisResult:
    """Factor an exact unitary into an ``{H, T}`` word (plus a phase).

    Raises :class:`~repro.errors.RingError` for non-unitary input and
    :class:`~repro.errors.ApproximationError` if the base case cannot
    be resolved (which would indicate a matrix outside the Clifford+T
    group -- impossible for genuinely unitary ``D[omega]`` matrices).
    """
    if not matrix.is_unitary():
        raise RingError("synthesize_exact requires an exactly unitary matrix")
    prefix: List[str] = []  # gate names in matrix order (leftmost first)
    current = matrix
    while current.sde() > 1:
        step_names, current = _lookahead_reduce(current)
        prefix.extend(step_names)
    base_word, phase = _lookup_with_phase(current)
    matrix_order = tuple(prefix) + base_word
    # Circuit order is the reverse of matrix order.
    return SynthesisResult(gates=tuple(reversed(matrix_order)), phase_exponent=phase)


_LOOKAHEAD_DEPTH = 10


def _lookahead_reduce(matrix: Matrix2) -> Tuple[Tuple[str, ...], Matrix2]:
    """Peel the shortest ``{h, t}`` prefix that strictly lowers the sde.

    The sde of a Clifford+T word matrix is not monotone along the word,
    so a one-step greedy descent can stall on plateaus; a breadth-first
    search over short peel prefixes (branching 2, bounded depth) always
    escapes them in practice.  Each committed step lowers the sde by at
    least one, so the outer loop terminates after at most ``sde(U)``
    rounds.
    """
    from collections import deque

    target = matrix.sde()
    h_dagger = _H  # H is self-adjoint
    t_dagger = _T_DAGGER
    seen = {matrix.key()}
    queue = deque([((), matrix)])
    while queue:
        names, current = queue.popleft()
        if len(names) >= _LOOKAHEAD_DEPTH:
            continue
        for name, gate_dagger in (("h", h_dagger), ("t", t_dagger)):
            candidate = gate_dagger @ current
            key = candidate.key()
            if key in seen:
                continue
            seen.add(key)
            new_names = names + (name,)
            if candidate.sde() < target:
                # new_names were peeled left-to-right: matrix order.
                return (new_names, candidate)
            queue.append((new_names, candidate))
    raise ApproximationError(
        f"sde reduction stalled at sde={target}; increase the lookahead depth"
    )
