"""Exact Clifford+T synthesis (the constructive direction of [8]).

* :func:`~repro.synth.exact.synthesize_exact` -- single-qubit ``{H, T}``
  words via sde reduction with lookahead;
* :func:`~repro.synth.multiqubit.synthesize_unitary` -- multi-qubit
  Giles/Selinger column reduction into two-level operations, emitted as
  multi-controlled gates;
* :func:`~repro.synth.multiqubit.synthesize_from_dd` -- the same,
  starting from a matrix decision diagram.
"""

from repro.synth.exact import SynthesisResult, synthesize_exact, word_to_matrix
from repro.synth.multiqubit import (
    exact_unitary_of_circuit,
    is_exact_unitary,
    synthesize_from_dd,
    synthesize_unitary,
)
from repro.synth.stateprep import (
    is_exact_unit_vector,
    prepare_state,
    prepare_state_from_dd,
)

__all__ = [
    "SynthesisResult",
    "exact_unitary_of_circuit",
    "is_exact_unit_vector",
    "is_exact_unitary",
    "prepare_state",
    "prepare_state_from_dd",
    "synthesize_exact",
    "synthesize_from_dd",
    "synthesize_unitary",
    "word_to_matrix",
]
