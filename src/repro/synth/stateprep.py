r"""Exact state preparation for :math:`\mathbb{D}[\omega]` vectors.

Given an exact unit vector (e.g. the amplitude list of a Clifford+T
state), produce a circuit preparing it from ``|0...0>`` -- Giles and
Selinger's column lemma applied once: reduce the vector to ``e_0`` by
two-level operations ``L_k ... L_1 v = e_0``; then
``v = L_1^dag ... L_k^dag e_0`` and the daggered fragments, in reverse,
are the preparation circuit.

Combined with the simulator this closes the loop for *states* just like
:func:`repro.synth.multiqubit.synthesize_unitary` does for operators::

    state DD -> exact amplitudes -> preparation circuit -> state DD
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuits.circuit import Circuit, Operation
from repro.errors import RingError
from repro.rings.domega import DOmega
from repro.synth.multiqubit import _apply_operation_rows, _reduce_column

__all__ = ["prepare_state", "prepare_state_from_dd", "is_exact_unit_vector"]


def is_exact_unit_vector(amplitudes: Sequence[DOmega]) -> bool:
    """Ring-exact check ``sum |a_i|^2 == 1``."""
    total = DOmega.zero()
    for amplitude in amplitudes:
        total = total + amplitude.abs_squared()
    return total == DOmega.one()


def prepare_state(amplitudes: Sequence[DOmega], num_qubits: int) -> Circuit:
    """Synthesise a preparation circuit for an exact state vector.

    The returned circuit maps ``|0...0>`` to exactly the given
    amplitudes (verified in the ring by the tests).  Raises
    :class:`~repro.errors.RingError` for non-unit input.
    """
    size = 1 << num_qubits
    if len(amplitudes) != size:
        raise RingError(f"need {size} amplitudes for {num_qubits} qubits")
    if not is_exact_unit_vector(amplitudes):
        raise RingError("prepare_state requires an exact unit vector")
    # Embed the vector as column 0 of a working grid; _reduce_column only
    # ever reads and mixes rows of column 0 (the other columns just come
    # along for the ride and are ignored).
    grid: List[List[DOmega]] = [
        [amplitudes[row] if col == 0 else DOmega.zero() for col in range(size)]
        for row in range(size)
    ]
    fragments: List[Operation] = []

    def apply_fragment(operations: List[Operation]) -> None:
        for operation in operations:
            _apply_operation_rows(grid, operation, num_qubits)
        fragments.extend(operations)

    _reduce_column(grid, 0, num_qubits, size, apply_fragment, max_sweeps=256)
    # fragments reduce v to e_0 (= |0...0>); the preparation circuit is
    # the daggered fragments in reverse order.
    circuit = Circuit(num_qubits, name="state_preparation")
    for operation in reversed(fragments):
        circuit.operations.append(operation.dagger())
    return circuit


def prepare_state_from_dd(manager, state_edge) -> Circuit:
    """Preparation circuit for a state held as a decision diagram.

    Extracts the exact amplitudes from an algebraic manager's vector DD
    and runs :func:`prepare_state`.  Requires all amplitudes to lie in
    ``D[omega]`` (true for any state produced by Clifford+T simulation
    from a basis state).
    """
    from repro.errors import InexactDivisionError

    weights = manager.to_exact_amplitudes(state_edge)
    amplitudes: List[DOmega] = []
    for weight in weights:
        if isinstance(weight, DOmega):
            amplitudes.append(weight)
        else:
            try:
                amplitudes.append(weight.to_domega())
            except (AttributeError, InexactDivisionError) as error:
                raise RingError(
                    "state amplitudes are not in D[omega]; the state is "
                    "not exactly Clifford+T-preparable"
                ) from error
    return prepare_state(amplitudes, manager.num_qubits)
