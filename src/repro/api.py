r"""``repro.api`` -- the stable, typed entry point of the reproduction.

Historically every consumer built its own stack by hand: the CLI, the
five evalsuite drivers and the benchmark harnesses each picked a manager
factory, threaded loose ``Simulator`` keyword arguments and invented
their own sweep loop.  This module replaces those five divergent
construction surfaces with one typed facade:

:class:`SimulatorConfig`
    A frozen, hashable, picklable description of *how* to simulate:
    number system, tolerance, normalisation scheme, sanitizer mode,
    garbage-collection policy, telemetry mode.  It is the single
    construction path for managers and simulators.

:class:`RunRequest` / :class:`RunResult`
    One simulation job and its transportable outcome.  A result carries
    the final state as a :mod:`repro.dd.serialize` document (exact for
    the algebraic systems), the per-gate trace, and a telemetry
    snapshot -- everything crosses process boundaries as plain data.

:func:`run` / :func:`run_batch`
    Execute one request in-process, or fan a list of independent
    requests out over a worker pool (:mod:`repro.exec`).

Quickstart::

    from repro.api import RunRequest, SimulatorConfig, run, run_batch
    from repro import Circuit

    bell = Circuit(2).h(0).cx(0, 1)
    result = run(RunRequest(bell, SimulatorConfig(system="algebraic")))
    print(result.node_count, result.is_zero_state)

    sweep = [
        RunRequest(bell, SimulatorConfig(system="numeric", eps=eps))
        for eps in (0.0, 1e-10, 1e-5)
    ]
    batch = run_batch(sweep, workers=4)
    for job in batch.completed:
        print(job.label, job.node_count)

Direct ``Simulator(...)`` construction outside this module is linted
against (rule RL008 of ``tools/repro_lint``); loose ``Simulator``
keyword arguments are deprecated in favour of ``config=``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.circuits.circuit import Circuit
from repro.dd import serialize
from repro.dd.edge import Edge
from repro.dd.manager import (
    DDManager,
    algebraic_gcd_manager,
    algebraic_manager,
    numeric_manager,
)
from repro.dd.mem import MemoryBudget, MemoryConfig
from repro.errors import ConfigError
from repro.obs import Telemetry, TraceContext
from repro.sim.simulator import Simulator
from repro.sim.trace import SimulationTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (exec imports api)
    from repro.exec.batch import BatchResult

__all__ = [
    "SYSTEMS",
    "SANITIZE_MODES",
    "TELEMETRY_MODES",
    "SimulatorConfig",
    "RunRequest",
    "RunResult",
    "make_simulator",
    "run",
    "run_batch",
    "run_with",
]

#: The number-system choices of the facade (and of every CLI subcommand).
SYSTEMS: Tuple[str, ...] = ("algebraic", "algebraic-gcd", "numeric")

#: Sanitizer modes accepted by :class:`SimulatorConfig.sanitize`.
SANITIZE_MODES: Tuple[str, ...] = ("off", "check-on-root", "check-every-op")

#: Telemetry modes: ``off`` (null instruments), ``metrics`` (default),
#: ``tracing`` (metrics plus the span ring).
TELEMETRY_MODES: Tuple[str, ...] = ("off", "metrics", "tracing")

_NORMALIZATIONS: Tuple[str, ...] = ("leftmost", "max-magnitude")
_PRECISIONS: Tuple[str, ...] = ("double", "single")


@dataclass(frozen=True)
class SimulatorConfig:
    """Frozen description of one simulation configuration.

    Instances are immutable, hashable and picklable, so they can key
    sweep dictionaries and travel to worker processes unchanged.  All
    fields have library defaults; validation happens eagerly at
    construction (:class:`~repro.errors.ConfigError`).

    Parameters
    ----------
    system:
        ``"algebraic"`` (Q[omega], Algorithm 2), ``"algebraic-gcd"``
        (D[omega] GCD scheme, Algorithm 3) or ``"numeric"`` (IEEE-754
        doubles behind a tolerance table).
    eps:
        Numeric tolerance; ignored by the exact systems.
    normalization / precision:
        Numeric-system variants (paper Section III / V-A): leftmost vs
        largest-magnitude pivot, double vs single machine precision.
    sanitize:
        DD-invariant sanitizer mode (see :mod:`repro.dd.sanitizer`).
    gc:
        Garbage-collection node threshold; ``None`` keeps automatic
        collection off.  ``gc_min_yield`` tunes the grow-on-low-yield
        heuristic.
    max_nodes / max_bytes:
        Optional hard :class:`~repro.dd.mem.MemoryBudget`; a run whose
        live state cannot fit raises
        :class:`~repro.errors.MemoryBudgetExceeded`.
    record_bit_widths:
        Collect the per-gate max coefficient bit-width (Fig. 5).
    use_apply_kernel:
        Apply gates through the direct vector kernel (default) or the
        matrix-DD fallback.
    telemetry:
        ``"off"``, ``"metrics"`` or ``"tracing"``.
    """

    system: str = "algebraic"
    eps: float = 0.0
    normalization: str = "leftmost"
    precision: str = "double"
    sanitize: str = "off"
    gc: Optional[int] = None
    gc_min_yield: float = 0.25
    max_nodes: Optional[int] = None
    max_bytes: Optional[int] = None
    record_bit_widths: bool = False
    use_apply_kernel: bool = True
    telemetry: str = "metrics"

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ConfigError(f"unknown number system {self.system!r}; choose from {SYSTEMS}")
        if self.sanitize not in SANITIZE_MODES:
            raise ConfigError(
                f"unknown sanitizer mode {self.sanitize!r}; choose from {SANITIZE_MODES}"
            )
        if self.telemetry not in TELEMETRY_MODES:
            raise ConfigError(
                f"unknown telemetry mode {self.telemetry!r}; choose from {TELEMETRY_MODES}"
            )
        if self.normalization not in _NORMALIZATIONS:
            raise ConfigError(
                f"unknown normalization {self.normalization!r}; choose from {_NORMALIZATIONS}"
            )
        if self.precision not in _PRECISIONS:
            raise ConfigError(
                f"unknown precision {self.precision!r}; choose from {_PRECISIONS}"
            )
        if self.eps < 0.0:
            raise ConfigError("eps must be non-negative")
        if self.gc is not None and self.gc < 1:
            raise ConfigError("gc threshold must be a positive node count")
        for name in ("max_nodes", "max_bytes"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigError(f"{name} must be positive when set")

    # -- derived descriptions -------------------------------------------

    @property
    def label(self) -> str:
        """Short human-readable configuration tag (sweep keys, reports)."""
        if self.system == "numeric":
            return f"eps={self.eps:g}"
        return self.system

    def with_updates(self, **changes: Any) -> "SimulatorConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    # -- construction ----------------------------------------------------

    def create_telemetry(self) -> Telemetry:
        if self.telemetry == "off":
            return Telemetry.disabled()
        if self.telemetry == "tracing":
            return Telemetry.tracing()
        return Telemetry()

    def memory_config(self) -> Optional[MemoryConfig]:
        """The GC trigger policy, or ``None`` when fully off."""
        if self.gc is None and self.max_nodes is None and self.max_bytes is None:
            return None
        budget = None
        if self.max_nodes is not None or self.max_bytes is not None:
            budget = MemoryBudget(max_nodes=self.max_nodes, max_bytes=self.max_bytes)
        if self.gc is None:
            return MemoryConfig(enabled=False, budget=budget)
        return MemoryConfig(
            threshold=self.gc, min_yield=self.gc_min_yield, budget=budget
        )

    def create_manager(
        self, num_qubits: int, telemetry: Optional[Telemetry] = None
    ) -> DDManager:
        """A fresh :class:`~repro.dd.manager.DDManager` for this config."""
        telemetry = telemetry if telemetry is not None else self.create_telemetry()
        memory = self.memory_config()
        if self.system == "algebraic":
            return algebraic_manager(num_qubits, telemetry=telemetry, memory=memory)
        if self.system == "algebraic-gcd":
            return algebraic_gcd_manager(num_qubits, telemetry=telemetry, memory=memory)
        return numeric_manager(
            num_qubits,
            eps=self.eps,
            normalization=self.normalization,
            precision=self.precision,
            telemetry=telemetry,
            memory=memory,
        )

    def create_simulator(
        self, num_qubits: int, telemetry: Optional[Telemetry] = None
    ) -> Simulator:
        """Manager plus simulator in one step (single construction path)."""
        return Simulator(self.create_manager(num_qubits, telemetry), config=self)


def make_simulator(
    manager: DDManager, config: Optional[SimulatorConfig] = None
) -> Simulator:
    """A :class:`~repro.sim.simulator.Simulator` over an existing manager.

    This is the facade's construction path for callers that already own
    a manager (equivalence checking, fault injection); everything else
    should go through :meth:`SimulatorConfig.create_simulator`.
    """
    return Simulator(manager, config=config if config is not None else SimulatorConfig())


@dataclass(frozen=True)
class RunRequest:
    """One independent simulation job.

    ``label`` defaults to ``<circuit>/<config label>``.  When
    ``error_reference`` names an exact configuration, the worker also
    simulates the reference and fills the per-gate footnote-8 error
    series into the returned trace (plus ``final_error`` and
    ``fidelity`` on the result) -- this is how the eps-tradeoff sweep
    runs as an embarrassingly parallel batch.

    ``trace_context`` is the distributed-tracing context
    (:class:`~repro.obs.TraceContext`: trace id, parent span id, clock
    anchor) injected by :func:`run_batch` when its coordinator
    telemetry has tracing enabled; callers never set it by hand.  A
    worker that receives one records spans and ships them home in the
    job outcome for re-parenting under the coordinator's ``exec.batch``
    span.  It has no effect on simulation results.
    """

    circuit: Circuit
    config: SimulatorConfig = SimulatorConfig()
    label: Optional[str] = None
    error_reference: Optional[SimulatorConfig] = None
    trace_context: Optional[TraceContext] = None

    @property
    def job_label(self) -> str:
        return self.label if self.label else f"{self.circuit.name}/{self.config.label}"


@dataclass
class RunResult:
    """The transportable outcome of one :class:`RunRequest`.

    The final state travels as a :mod:`repro.dd.serialize` JSON
    document (``state_payload``): exact for the algebraic systems,
    value-preserving for the numeric one, and reloadable into any fresh
    manager of the same configuration via :meth:`restore_state`.
    ``metrics`` is the job's own ``sim.*``/``dd.*`` telemetry snapshot;
    :func:`repro.exec.run_batch` merges these fleet-wide.
    """

    label: str
    config: SimulatorConfig
    num_qubits: int
    num_gates: int
    state_payload: str
    trace: SimulationTrace
    node_count: int
    is_zero_state: bool
    seconds: float
    attempts: int = 1
    final_error: Optional[float] = None
    fidelity: Optional[float] = None
    metrics: Dict[str, Any] = field(default_factory=dict)

    def restore_state(
        self, manager: Optional[DDManager] = None
    ) -> Tuple[DDManager, Edge]:
        """Rebuild the final state into ``manager`` (fresh one if omitted)."""
        if manager is None:
            manager = self.config.create_manager(self.num_qubits)
        return manager, serialize.loads(manager, self.state_payload)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view (batch reports, committed artifacts)."""
        return {
            "label": self.label,
            "config": self.config.label,
            "system": self.config.system,
            "num_qubits": self.num_qubits,
            "num_gates": self.num_gates,
            "node_count": self.node_count,
            "is_zero_state": self.is_zero_state,
            "seconds": self.seconds,
            "attempts": self.attempts,
            "final_error": self.final_error,
            "fidelity": self.fidelity,
            "state_payload": self.state_payload,
            "trace": self.trace.to_dict(),
            "metrics": self.metrics,
        }


def run(
    request: RunRequest,
    telemetry: Optional[Telemetry] = None,
    client: Optional[Any] = None,
) -> RunResult:
    """Execute one request in the current process.

    ``telemetry`` overrides the scope built from the config -- the batch
    worker passes its own so a partial snapshot survives job failure.

    ``client`` targets a running :class:`repro.serve.SimulationService`
    instead: the request goes through the service's shard router, warm
    workers and result cache, and the call returns the byte-identical
    payload the in-process path would produce (or raises the service's
    typed :class:`~repro.errors.QueueFull` /
    :class:`~repro.errors.DeadlineExceeded` rejections).
    """
    if client is not None:
        return client.submit(request)
    config = request.config
    circuit = request.circuit
    scope = telemetry if telemetry is not None else config.create_telemetry()
    manager = config.create_manager(circuit.num_qubits, scope)
    simulator = Simulator(manager, config=config)
    return run_with(request, simulator, telemetry=scope)


def run_with(
    request: RunRequest,
    simulator: Simulator,
    telemetry: Optional[Telemetry] = None,
    keep_state: bool = True,
) -> RunResult:
    """Execute one request on an *existing* simulator stack.

    This is the warm path behind :func:`run` (which builds a fresh
    manager and simulator per call) and the persistent service's worker
    loop (:mod:`repro.serve`), which reuses one manager per
    configuration so unique/compute/weight tables stay hot across
    requests.  The simulator's manager must match the request's
    configuration and circuit width; results are byte-identical to the
    cold path because DD canonicity makes serialized payloads
    value-based, not history-based.

    ``telemetry`` is the scope whose metrics snapshot lands on the
    result (defaults to the simulator's own scope).  ``keep_state=False``
    releases the final state's GC root registration after the state is
    serialized -- the long-lived service worker keeps tables warm
    without accumulating one live root per served request.
    """
    config = request.config
    circuit = request.circuit
    scope = telemetry if telemetry is not None else simulator.telemetry
    manager = simulator.manager

    reference_states: List[Edge] = []
    reference_manager: Optional[DDManager] = None
    if request.error_reference is not None:
        reference_manager = request.error_reference.create_manager(circuit.num_qubits)
        make_simulator(reference_manager, request.error_reference).run(
            circuit, step_callback=lambda _i, state: reference_states.append(state)
        )

    # The timed run only appends state edges; the dense error series is
    # filled in afterwards so reference conversions (expensive for
    # wide-coefficient algebraic states) never pollute per-gate timings.
    step_states: List[Edge] = []
    callback = (
        (lambda _index, state: step_states.append(state))
        if reference_manager is not None
        else None
    )

    started = time.perf_counter()
    outcome = simulator.run(circuit, step_callback=callback)
    seconds = time.perf_counter() - started

    trace = outcome.trace
    final_error: Optional[float] = None
    fidelity: Optional[float] = None
    if reference_manager is not None:
        from repro.sim.accuracy import state_error

        errors: List[float] = []
        for index, state in enumerate(step_states):
            reference_vector = reference_manager.to_statevector(reference_states[index])
            errors.append(state_error(manager.to_statevector(state), reference_vector))
        trace = trace.with_errors(errors)
        final_error = errors[-1] if errors else 0.0
        import numpy as np

        reference_vector = reference_manager.to_statevector(reference_states[-1])
        final_vector = manager.to_statevector(outcome.state)
        fidelity = float(abs(np.vdot(reference_vector, final_vector)) ** 2)

    # Metrics read before the state release below so node_count /
    # is_zero_state observe the live DD.
    result = RunResult(
        label=request.job_label,
        config=config,
        num_qubits=circuit.num_qubits,
        num_gates=len(circuit),
        state_payload=serialize.dumps(manager, outcome.state),
        trace=trace,
        node_count=outcome.node_count,
        is_zero_state=outcome.is_zero_state,
        seconds=seconds,
        final_error=final_error,
        fidelity=fidelity,
        metrics=dict(scope.metrics.snapshot()),
    )
    if not keep_state:
        # Simulator.run transfers the final state's root registration to
        # the caller (when GC is active); the state has been serialized
        # into the result, so a caller that only wants the payload hands
        # the root back here instead of leaking one per request.
        memory = manager.memory
        if memory.config.enabled or memory.config.budget is not None:
            memory.dec_ref(outcome.state)
    return result


def run_batch(
    requests: Sequence[RunRequest],
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.5,
    telemetry: Optional[Telemetry] = None,
    client: Optional[Any] = None,
) -> "BatchResult":
    """Fan independent requests out over a process pool.

    ``workers=1`` is the deterministic in-process fallback (used by
    tests); any higher count uses a
    :class:`concurrent.futures.ProcessPoolExecutor`.  Per-job
    ``timeout`` (seconds) and bounded ``retries`` with exponential
    ``backoff`` turn individual crashes into typed
    :class:`~repro.exec.batch.JobFailure` records instead of aborting
    the sweep.  See :mod:`repro.exec` for the engine semantics.

    ``client`` routes the whole batch through a running
    :class:`repro.serve.SimulationService` instead of spawning a pool:
    warm workers, shared result cache, per-request ``timeout`` as the
    service deadline.  ``workers``/``retries``/``backoff`` are the
    pool's knobs and are ignored on the client path (the service's own
    worker fleet and backpressure apply); the returned
    :class:`~repro.exec.batch.BatchResult` keeps the same shape, with
    typed rejections recorded as failures.
    """
    if client is not None:
        return client.run_batch(requests, timeout=timeout)
    from repro.exec.batch import run_batch as _run_batch

    return _run_batch(
        requests,
        workers=workers,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        telemetry=telemetry,
    )
