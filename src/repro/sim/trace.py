"""Per-gate simulation trace records.

The paper's evaluation (Figs. 2-5) plots, per applied gate: the QMDD
node count, the accumulated numerical error and the cumulative run-time.
:class:`SimulationStep` captures exactly those quantities (plus the
bit-width metric explaining the algebraic GSE overhead of Section V-B).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["SimulationStep", "SimulationTrace"]


@dataclass(frozen=True)
class SimulationStep:
    """Metrics snapshot after applying one gate."""

    gate_index: int
    gate_name: str
    node_count: int
    cumulative_seconds: float
    max_bit_width: int = 0
    error: Optional[float] = None  # filled in by the accuracy evaluation


@dataclass
class SimulationTrace:
    """The full per-gate history of one simulation run."""

    system_name: str
    circuit_name: str
    num_qubits: int
    steps: List[SimulationStep] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.steps[-1].cumulative_seconds if self.steps else 0.0

    @property
    def peak_node_count(self) -> int:
        return max((step.node_count for step in self.steps), default=0)

    @property
    def final_node_count(self) -> int:
        return self.steps[-1].node_count if self.steps else 0

    def node_counts(self) -> List[int]:
        return [step.node_count for step in self.steps]

    def errors(self) -> List[Optional[float]]:
        return [step.error for step in self.steps]

    def with_errors(self, errors: List[float]) -> "SimulationTrace":
        """A copy of the trace with the error column filled in."""
        if len(errors) != len(self.steps):
            raise ValueError("error list length must match the number of steps")
        updated = SimulationTrace(self.system_name, self.circuit_name, self.num_qubits)
        for step, error in zip(self.steps, errors):
            updated.steps.append(
                SimulationStep(
                    gate_index=step.gate_index,
                    gate_name=step.gate_name,
                    node_count=step.node_count,
                    cumulative_seconds=step.cumulative_seconds,
                    max_bit_width=step.max_bit_width,
                    error=error,
                )
            )
        return updated

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain-data view (JSON-ready; ``error=None`` is preserved)."""
        return {
            "system_name": self.system_name,
            "circuit_name": self.circuit_name,
            "num_qubits": self.num_qubits,
            "steps": [asdict(step) for step in self.steps],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulationTrace":
        trace = cls(
            system_name=data["system_name"],
            circuit_name=data["circuit_name"],
            num_qubits=data["num_qubits"],
        )
        for raw in data.get("steps", []):
            trace.steps.append(
                SimulationStep(
                    gate_index=raw["gate_index"],
                    gate_name=raw["gate_name"],
                    node_count=raw["node_count"],
                    cumulative_seconds=raw["cumulative_seconds"],
                    max_bit_width=raw.get("max_bit_width", 0),
                    error=raw.get("error"),
                )
            )
        return trace

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise the full trace (evaluation artifacts, CLI export)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimulationTrace":
        """Inverse of :meth:`to_json`; round-trips every step exactly."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("trace JSON must be an object")
        return cls.from_dict(data)
