r"""Dense numpy statevector simulator (reference implementation).

The straightforward 1-dimensional-array representation the paper
contrasts decision diagrams with (Section II-B, [8]-[10]): exponential
memory, but trivially correct -- which makes it the ground truth for
cross-validating the DD engine on small qubit counts, including gates
(arbitrary rotations) that the exact systems cannot represent.

Qubit 0 is the most significant index bit, matching the DD layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.circuit import Circuit, Operation
from repro.errors import SimulationError

__all__ = ["StatevectorSimulator", "apply_operation"]


def apply_operation(state: np.ndarray, operation: Operation, num_qubits: int) -> np.ndarray:
    """Apply one (multi-)controlled gate to a dense statevector."""
    if state.shape != (1 << num_qubits,):
        raise SimulationError(f"statevector must have length {1 << num_qubits}")
    u00, u01, u10, u11 = operation.gate.matrix
    target = operation.target
    result = state.copy()
    target_stride = 1 << (num_qubits - 1 - target)
    for index in range(1 << num_qubits):
        if (index >> (num_qubits - 1 - target)) & 1:
            continue  # handle each (|0>, |1>) pair once, from the 0 side
        partner = index | target_stride
        satisfied = all(
            (index >> (num_qubits - 1 - control)) & 1 for control in operation.controls
        ) and all(
            not (index >> (num_qubits - 1 - control)) & 1
            for control in operation.negative_controls
        )
        if not satisfied:
            continue
        low, high = state[index], state[partner]
        result[index] = u00 * low + u01 * high
        result[partner] = u10 * low + u11 * high
    return result


class StatevectorSimulator:
    """Dense reference simulator."""

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise SimulationError("need at least one qubit")
        if num_qubits > 24:
            raise SimulationError("dense simulation beyond 24 qubits is not sensible")
        self.num_qubits = num_qubits

    def zero_state(self) -> np.ndarray:
        state = np.zeros(1 << self.num_qubits, dtype=complex)
        state[0] = 1.0
        return state

    def run(self, circuit: Circuit, initial_state: Optional[np.ndarray] = None) -> np.ndarray:
        """Simulate and return the final dense statevector."""
        if circuit.num_qubits != self.num_qubits:
            raise SimulationError("circuit width does not match simulator width")
        state = self.zero_state() if initial_state is None else np.asarray(
            initial_state, dtype=complex
        ).copy()
        for operation in circuit:
            state = apply_operation(state, operation, self.num_qubits)
        return state

    def unitary(self, circuit: Circuit) -> np.ndarray:
        """The dense circuit unitary, column by column."""
        size = 1 << self.num_qubits
        matrix = np.zeros((size, size), dtype=complex)
        for column in range(size):
            basis = np.zeros(size, dtype=complex)
            basis[column] = 1.0
            matrix[:, column] = self.run(circuit, initial_state=basis)
        return matrix
