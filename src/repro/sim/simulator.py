r"""Gate-by-gate QMDD simulation of quantum circuits.

The :class:`Simulator` evolves a state-vector DD by one matrix-vector
multiplication per gate (the paper's simulation workload, Section III:
"hundreds or even thousands of ... matrix-vector multiplications"),
recording the per-gate metrics that the evaluation figures plot.

The same simulator runs against any
:class:`~repro.dd.manager.DDManager`, so switching between the
numerical representation (with its ``eps``) and the two algebraic
representations is a one-argument change::

    result_num = Simulator(numeric_manager(n, eps=1e-10)).run(circuit)
    result_alg = Simulator(algebraic_manager(n)).run(circuit)
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.circuits.circuit import Circuit, Operation
from repro.dd.apply import prepare_gate
from repro.dd.edge import Edge
from repro.dd.gatebuild import build_gate_dd
from repro.dd.manager import DDManager
from repro.dd.sanitizer import Sanitizer, SanitizerMode
from repro.errors import SimulationError
from repro.obs import Telemetry
from repro.rings.domega import BIT_WIDTH_BUCKETS
from repro.sim.trace import SimulationStep, SimulationTrace

__all__ = ["Simulator", "SimulationResult"]

#: Bucket bounds (seconds) for the per-gate duration histogram
#: ``sim.gate.seconds``.  Log-spaced from "trivial single-qubit gate"
#: to "pathological blow-up gate"; fixed so exports stay comparable.
GATE_SECONDS_BUCKETS = (
    0.0001,
    0.0003,
    0.001,
    0.003,
    0.01,
    0.03,
    0.1,
    0.3,
    1.0,
)


@dataclass
class SimulationResult:
    """Final state plus the per-gate metric trace."""

    manager: DDManager
    state: Edge
    trace: SimulationTrace

    def final_amplitudes(self) -> np.ndarray:
        """Dense final statevector (exponential; metrics/tests only)."""
        return self.manager.to_statevector(self.state)

    def amplitude(self, index: int) -> complex:
        return self.manager.system.to_complex(self.manager.amplitude(self.state, index))

    @property
    def node_count(self) -> int:
        return self.manager.node_count(self.state)

    @property
    def is_zero_state(self) -> bool:
        """True when the DD collapsed to the all-zero vector -- the
        paper's worst-case outcome of over-aggressive tolerance
        (Example 5: "a perfectly compact but obviously wrong
        representation")."""
        return self.manager.is_zero_edge(self.state)


class Simulator:
    """QMDD circuit simulator with per-gate metric recording.

    Parameters
    ----------
    manager:
        The decision-diagram manager (fixes the number system).
    record_bit_widths:
        Collect the max integer bit-width after every gate (slightly
        costly; needed for the Fig. 5 overhead analysis).
    use_apply_kernel:
        Apply gates through the direct vector-DD kernel
        (:func:`repro.dd.apply.apply_gate`) instead of building a matrix
        DD and multiplying.  Both paths yield the same canonical state;
        the kernel skips the identity levels.  ``unitary`` and
        ``run_matrix_matrix`` always use matrix DDs regardless.
    sanitize:
        A :class:`~repro.dd.sanitizer.SanitizerMode` (or its string
        value / ``True``): ``"off"`` (default), ``"check-on-root"``
        (full invariant check of the final state of each :meth:`run`)
        or ``"check-every-op"`` (a full check after every gate).
        Violations raise :class:`~repro.errors.SanitizerError`.
    telemetry:
        The :class:`~repro.obs.Telemetry` scope for the simulator-level
        instruments (``sim.gates``, ``sim.gate.seconds``, per-gate
        spans).  Defaults to the manager's own scope, so one profile
        covers the whole stack; pass an explicit scope only to separate
        driver metrics from engine metrics.
    gc:
        Garbage-collection policy forwarded to the manager's
        :class:`~repro.dd.mem.MemoryManager` (``True`` for the default
        policy, an ``int`` node threshold, a
        :class:`~repro.dd.mem.MemoryBudget` or full
        :class:`~repro.dd.mem.MemoryConfig`; ``None`` leaves the
        manager's configuration untouched).  With GC active, :meth:`run`
        keeps the evolving state registered as a root, gives the
        collector a chance to run after every gate, and leaves the
        final state registered (it backs the returned
        :class:`SimulationResult`).  A configured budget raises
        :class:`~repro.errors.MemoryBudgetExceeded` mid-run when the
        live state cannot fit.
    config:
        A :class:`repro.api.SimulatorConfig` supplying
        ``record_bit_widths`` / ``use_apply_kernel`` / ``sanitize`` /
        ``gc`` in one typed object.  This is the supported construction
        path (:mod:`repro.api` is the facade); passing the loose
        keyword arguments above instead is **deprecated** and emits a
        :class:`DeprecationWarning`.  ``config`` and loose kwargs are
        mutually exclusive.
    """

    def __init__(
        self,
        manager: DDManager,
        record_bit_widths: bool = False,
        use_apply_kernel: bool = True,
        sanitize: "SanitizerMode | str | bool | None" = None,
        telemetry: Optional[Telemetry] = None,
        gc: "Any | None" = None,
        config: "Any | None" = None,
    ) -> None:
        loose = (
            record_bit_widths is not False
            or use_apply_kernel is not True
            or sanitize is not None
            or gc is not None
        )
        if config is not None:
            # Duck-typed to avoid the repro.api import cycle; any object
            # with the SimulatorConfig fields works.
            if loose:
                raise SimulationError(
                    "pass either config= or the loose Simulator keyword "
                    "arguments, not both"
                )
            record_bit_widths = config.record_bit_widths
            use_apply_kernel = config.use_apply_kernel
            sanitize = None if config.sanitize == "off" else config.sanitize
            gc = config.memory_config()
        elif loose:
            warnings.warn(
                "loose Simulator keyword arguments (record_bit_widths, "
                "use_apply_kernel, sanitize, gc) are deprecated; build a "
                "repro.api.SimulatorConfig and pass config=..., or go "
                "through repro.api.run / run_batch",
                DeprecationWarning,
                stacklevel=2,
            )
        self.manager = manager
        self.record_bit_widths = record_bit_widths
        self.use_apply_kernel = use_apply_kernel
        self.telemetry = telemetry if telemetry is not None else manager.telemetry
        registry = self.telemetry.metrics
        self._gate_counter = registry.counter("sim.gates")
        self._gate_seconds = registry.histogram("sim.gate.seconds", GATE_SECONDS_BUCKETS)
        self._nodes_gauge = registry.gauge("sim.state.nodes")
        self._peak_nodes_gauge = registry.gauge("sim.state.peak_nodes")
        self._bit_width_gauge = registry.gauge("sim.state.max_bit_width")
        self._bit_width_hist = registry.histogram("sim.state.bit_width", BIT_WIDTH_BUCKETS)
        mode = SanitizerMode.coerce(sanitize)
        self.sanitizer: Optional[Sanitizer] = (
            Sanitizer(manager, mode) if mode is not SanitizerMode.OFF else None
        )
        self._gate_cache: Dict[Tuple, Edge] = {}
        self._entry_cache: Dict[Tuple, Tuple[Any, ...]] = {}
        self._kernel_cache: Dict[Tuple, Any] = {}
        if gc is not None:
            manager.memory.configure(gc)
        memory = manager.memory
        self._gc_active = memory.config.enabled or memory.config.budget is not None

    # ------------------------------------------------------------------

    def gate_dd(self, operation: Operation) -> Edge:
        """The (cached) matrix DD of one gate application."""
        key = (
            operation.gate.name,
            operation.gate.params,
            operation.target,
            operation.controls,
            operation.negative_controls,
        )
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        entries = self._import_entries(operation)
        edge = build_gate_dd(
            self.manager,
            entries,
            operation.target,
            controls=operation.controls,
            negative_controls=operation.negative_controls,
        )
        # Cached across gate applications: pin so a GC pass between two
        # uses cannot sweep the gate's nodes from under the cache.
        self.manager.memory.pin(edge)
        self._gate_cache[key] = edge
        return edge

    def _import_entries(self, operation: Operation) -> Tuple[Any, ...]:
        system = self.manager.system
        gate = operation.gate
        key = (gate.name, gate.params)
        cached = self._entry_cache.get(key)
        if cached is not None:
            return cached
        if gate.exact is not None:
            entries = tuple(system.from_domega(entry) for entry in gate.exact)
        elif not system.supports_arbitrary_complex:
            raise SimulationError(
                f"gate {gate.name!r} has no exact D[omega] representation; "
                "compile it to Clifford+T first (repro.approx.approximate_circuit)"
            )
        else:
            entries = tuple(system.from_complex(entry) for entry in gate.matrix)
        self._entry_cache[key] = entries
        return entries

    def _apply_operation(self, state: Edge, operation: Operation) -> Edge:
        """One gate application: direct kernel or matrix-DD fallback."""
        if self.use_apply_kernel:
            key = (
                operation.gate.name,
                operation.gate.params,
                operation.target,
                operation.controls,
                operation.negative_controls,
            )
            kernel = self._kernel_cache.get(key)
            if kernel is None:
                kernel = prepare_gate(
                    self.manager,
                    self._import_entries(operation),
                    operation.target,
                    controls=operation.controls,
                    negative_controls=operation.negative_controls,
                )
                self._kernel_cache[key] = kernel
            return kernel.apply(state)
        return self.manager.mat_vec(self.gate_dd(operation), state)

    # ------------------------------------------------------------------

    def run(
        self,
        circuit: Circuit,
        initial_state: Optional[Edge] = None,
        step_callback: Optional[Callable[[int, Edge], None]] = None,
    ) -> SimulationResult:
        """Simulate ``circuit`` from ``initial_state`` (default ``|0..0>``).

        ``step_callback(gate_index, state_edge)`` runs after every gate;
        the evaluation harness uses it to compute per-gate errors against
        a reference run.
        """
        if circuit.num_qubits != self.manager.num_qubits:
            raise SimulationError(
                f"circuit width {circuit.num_qubits} does not match "
                f"manager width {self.manager.num_qubits}"
            )
        state = initial_state if initial_state is not None else self.manager.zero_state()
        trace = SimulationTrace(
            system_name=self.manager.system.name,
            circuit_name=circuit.name,
            num_qubits=circuit.num_qubits,
        )
        sanitizer = self.sanitizer
        check_every_op = (
            sanitizer is not None and sanitizer.mode is SanitizerMode.CHECK_EVERY_OP
        )
        tracer = self.telemetry.tracer
        tracing = tracer.enabled  # hoisted: no span kwargs built when off
        gate_counter = self._gate_counter
        gate_seconds = self._gate_seconds
        gc_active = self._gc_active
        memory = self.manager.memory
        if gc_active:
            # The evolving state is the collector's root.  The previous
            # state is released only after the new one is registered, so
            # a same-node transition never transiently drops to zero.
            memory.inc_ref(state)
        previous_nodes = 0
        previous_elapsed = 0.0
        started = time.perf_counter()
        for index, operation in enumerate(circuit):
            if tracing:
                span = tracer.span("sim.gate", gate=str(operation.gate), index=index)
                with span:
                    new_state = self._apply_operation(state, operation)
            else:
                new_state = self._apply_operation(state, operation)
            if gc_active:
                memory.inc_ref(new_state)
                memory.dec_ref(state)
                state = new_state
                memory.maybe_collect()
            else:
                state = new_state
            if check_every_op:
                sanitizer.check_state(state)
            elapsed = time.perf_counter() - started
            width = self.manager.max_bit_width(state) if self.record_bit_widths else 0
            node_count = self.manager.node_count(state)
            gate_counter.inc()
            gate_seconds.observe(elapsed - previous_elapsed)
            self._nodes_gauge.set(node_count)
            self._peak_nodes_gauge.set_max(node_count)
            if self.record_bit_widths:
                self._bit_width_gauge.set_max(width)
                self._bit_width_hist.observe(width)
            if tracing:
                span.set(nodes=node_count, node_delta=node_count - previous_nodes)
            previous_nodes = node_count
            previous_elapsed = elapsed
            trace.steps.append(
                SimulationStep(
                    gate_index=index,
                    gate_name=str(operation.gate),
                    node_count=node_count,
                    cumulative_seconds=elapsed,
                    max_bit_width=width,
                )
            )
            if step_callback is not None:
                step_callback(index, state)
        if sanitizer is not None and not check_every_op:
            sanitizer.check_state(state)
        # The final state's root registration is deliberately retained:
        # it keeps the returned DD alive across later collections, and
        # its ownership moves into the result handed to the caller.
        return SimulationResult(  # repro-lint: transfers-ownership
            manager=self.manager, state=state, trace=trace
        )

    def apply(self, state: Edge, operation: Operation) -> Edge:
        """Apply a single gate to a state edge (no trace)."""
        return self._apply_operation(state, operation)

    def unitary(self, circuit: Circuit) -> Edge:
        """The full circuit unitary as a matrix DD (gate-matrix products
        in reversed order, paper Section II-A)."""
        if circuit.num_qubits != self.manager.num_qubits:
            raise SimulationError("circuit width does not match manager width")
        accumulator = self.manager.identity()
        for operation in circuit:
            accumulator = self.manager.mat_mat(self.gate_dd(operation), accumulator)
        return accumulator

    def run_matrix_matrix(
        self,
        circuit: Circuit,
        initial_state: Optional[Edge] = None,
        block_size: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate via matrix-matrix products (strategy of [25]).

        Instead of one matrix-vector multiplication per gate, gate
        matrices are first combined into blocks of ``block_size``
        consecutive gates (the whole circuit when ``None``) and each
        block is applied to the state at once.  The authors' companion
        paper [25] shows this trades the usually-small state DD against
        usually-larger intermediate matrix DDs -- profitable when the
        state DD is large or gates share structure.

        The per-step trace records one entry per *block*; node counts
        refer to the state after the block is applied, and
        ``max_bit_width`` (if enabled) to that state as well.
        """
        if circuit.num_qubits != self.manager.num_qubits:
            raise SimulationError(
                f"circuit width {circuit.num_qubits} does not match "
                f"manager width {self.manager.num_qubits}"
            )
        if block_size is not None and block_size < 1:
            raise SimulationError("block_size must be positive")
        operations = list(circuit)
        size = block_size if block_size is not None else max(1, len(operations))
        state = initial_state if initial_state is not None else self.manager.zero_state()
        trace = SimulationTrace(
            system_name=self.manager.system.name,
            circuit_name=f"{circuit.name}[mm:{size}]",
            num_qubits=circuit.num_qubits,
        )
        tracer = self.telemetry.tracer
        started = time.perf_counter()
        for block_index in range(0, max(len(operations), 1), size):
            block = operations[block_index : block_index + size]
            if not block:
                break
            with tracer.span("sim.block", gates=len(block)):
                accumulator = self.gate_dd(block[0])
                for operation in block[1:]:
                    accumulator = self.manager.mat_mat(
                        self.gate_dd(operation), accumulator
                    )
                state = self.manager.mat_vec(accumulator, state)
            elapsed = time.perf_counter() - started
            width = self.manager.max_bit_width(state) if self.record_bit_widths else 0
            trace.steps.append(
                SimulationStep(
                    gate_index=min(block_index + size, len(operations)) - 1,
                    gate_name=f"block[{len(block)}]",
                    node_count=self.manager.node_count(state),
                    cumulative_seconds=elapsed,
                    max_bit_width=width,
                )
            )
        return SimulationResult(manager=self.manager, state=state, trace=trace)
