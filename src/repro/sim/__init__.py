"""Simulation engines: QMDD-based and dense-statevector reference."""

from repro.sim.accuracy import state_error, trace_errors
from repro.sim.measure import measure_probabilities, sample_counts
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.statevector import StatevectorSimulator, apply_operation
from repro.sim.trace import SimulationStep, SimulationTrace

__all__ = [
    "SimulationResult",
    "SimulationStep",
    "SimulationTrace",
    "Simulator",
    "StatevectorSimulator",
    "apply_operation",
    "measure_probabilities",
    "sample_counts",
    "state_error",
    "trace_errors",
]
