r"""Pauli-string observables on decision-diagram states.

Expectation values ``<psi| P |psi>`` for tensor products of Pauli
operators, computed entirely inside the DD framework: the Pauli string
is built as a (linear-size) matrix DD, applied with one matrix-vector
multiplication, and contracted with the exact inner product.  Under the
algebraic number systems the expectation is an exact ring element --
Pauli eigenvalues are ``+-1``, so expectations of Clifford+T states lie
in ``Q[omega]`` (indeed in its real subfield).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.circuits.gates import X, Y, Z, identity_gate
from repro.dd.edge import Edge
from repro.dd.gatebuild import build_gate_dd
from repro.dd.manager import DDManager
from repro.errors import SimulationError

__all__ = ["PauliString", "expectation", "variance"]

_PAULI_GATES = {"I": identity_gate(), "X": X, "Y": Y, "Z": Z}


class PauliString:
    """A tensor product of Pauli operators, e.g. ``Z0 X2`` on 4 qubits.

    Construct from a mapping ``{qubit: 'X'|'Y'|'Z'}`` (identity
    elsewhere) or parse a label like ``"ZIXI"`` (qubit 0 first).
    """

    __slots__ = ("num_qubits", "factors")

    def __init__(self, num_qubits: int, factors: Mapping[int, str]) -> None:
        if num_qubits < 1:
            raise SimulationError("PauliString needs at least one qubit")
        cleaned: Dict[int, str] = {}
        for qubit, label in factors.items():
            if not 0 <= qubit < num_qubits:
                raise SimulationError(f"qubit {qubit} out of range")
            label = label.upper()
            if label not in ("I", "X", "Y", "Z"):
                raise SimulationError(f"unknown Pauli label {label!r}")
            if label != "I":
                cleaned[qubit] = label
        self.num_qubits = num_qubits
        self.factors = dict(sorted(cleaned.items()))

    @classmethod
    def from_label(cls, label: str) -> "PauliString":
        """Parse ``"ZIXI"``-style labels (first character = qubit 0)."""
        return cls(len(label), {index: ch for index, ch in enumerate(label)})

    @property
    def weight(self) -> int:
        """Number of non-identity factors."""
        return len(self.factors)

    def label(self) -> str:
        return "".join(self.factors.get(q, "I") for q in range(self.num_qubits))

    def matrix_dd(self, manager: DDManager) -> Edge:
        """The Pauli string as a matrix DD (product of 1-qubit gates)."""
        if manager.num_qubits != self.num_qubits:
            raise SimulationError("manager width does not match Pauli string")
        result = manager.identity()
        for qubit, pauli in self.factors.items():
            gate = _PAULI_GATES[pauli]
            entries = tuple(manager.system.from_domega(entry) for entry in gate.exact)
            result = manager.mat_mat(build_gate_dd(manager, entries, qubit), result)
        return result

    def __repr__(self) -> str:
        return f"PauliString({self.label()!r})"


def expectation(manager: DDManager, state: Edge, pauli: PauliString) -> Any:
    """``<psi| P |psi>`` as a weight of the active number system.

    The state is assumed normalised (as produced by unitary
    simulation); for unnormalised states divide by
    :meth:`DDManager.norm_squared` downstream.
    """
    applied = manager.mat_vec(pauli.matrix_dd(manager), state)
    return manager.inner_product(state, applied)


def variance(manager: DDManager, state: Edge, pauli: PauliString) -> float:
    """``<P^2> - <P>^2 = 1 - <P>^2`` for Pauli strings (as a float)."""
    value = manager.system.to_complex(expectation(manager, state, pauli))
    return max(0.0, 1.0 - abs(value) ** 2)
