r"""The paper's accuracy metric (footnote 8).

To quantify the accuracy of a numerical simulation the paper computes
the Euclidean norm of ``v_num - v_alg`` where ``v_alg`` is the exact
algebraic result -- after rescaling ``v_num`` to unit norm, "since an
error in the length of the vector can be fixed easily (except for a
0-vector)".
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.dd.edge import Edge
from repro.dd.manager import DDManager

__all__ = ["state_error", "trace_errors"]


def state_error(v_num: np.ndarray, v_alg: np.ndarray) -> float:
    """``|| v_num/||v_num|| - v_alg ||_2`` per the paper's footnote 8.

    A collapsed (all-zero) numerical vector cannot be re-normalised; its
    error is the distance of the zero vector from the exact result,
    i.e. ``||v_alg||`` (= 1 for a valid quantum state) -- the "completely
    useless result" case.
    """
    v_num = np.asarray(v_num, dtype=complex)
    v_alg = np.asarray(v_alg, dtype=complex)
    if v_num.shape != v_alg.shape:
        raise ValueError("vectors must have identical shapes")
    norm = np.linalg.norm(v_num)
    if norm == 0.0:  # repro-lint: allow[RL003] (exact-zero guard before division)
        return float(np.linalg.norm(v_alg))
    # Also align the global phase: a simulator-global phase offset is as
    # harmless as a length error, so compare after optimal phase match.
    rescaled = v_num / norm
    overlap = np.vdot(rescaled, v_alg)
    if abs(overlap) > 1e-15:
        rescaled = rescaled * (overlap / abs(overlap))
    return float(np.linalg.norm(rescaled - v_alg))


def trace_errors(
    numeric_manager: DDManager,
    numeric_states: Sequence[Edge],
    exact_vectors: Sequence[np.ndarray],
) -> List[float]:
    """Per-gate error series for an entire simulation run."""
    if len(numeric_states) != len(exact_vectors):
        raise ValueError("state and reference sequences must have equal length")
    errors = []
    for state, reference in zip(numeric_states, exact_vectors):
        errors.append(state_error(numeric_manager.to_statevector(state), reference))
    return errors
