r"""Measurement sampling from a state-vector decision diagram.

Sampling walks the DD from the root, choosing each qubit's outcome with
probability proportional to ``|edge weight|^2`` times the squared norm
of the sub-DD below -- an ``O(n)``-per-shot procedure that never touches
the exponential amplitude vector.  Probabilities are computed from the
active number system's weights (exactly, for the algebraic systems, up
to the final float conversion).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.dd.edge import Edge
from repro.dd.manager import DDManager
from repro.errors import SimulationError

__all__ = ["measure_probabilities", "sample_counts", "measure_and_collapse"]


def _subtree_norms(manager: DDManager, state: Edge) -> Dict[int, float]:
    """Squared norms of every node's sub-vector (memoised, bottom-up)."""
    system = manager.system
    norms: Dict[int, float] = {}

    def recurse(edge: Edge) -> float:
        if manager.is_zero_edge(edge):
            return 0.0
        weight_sq = abs(system.to_complex(edge.weight)) ** 2
        if edge.is_terminal:
            return weight_sq
        total = norms.get(edge.node.uid)
        if total is None:
            total = sum(recurse(child) for child in edge.node.edges)
            norms[edge.node.uid] = total
        return weight_sq * total

    recurse(state)
    return norms


def measure_probabilities(manager: DDManager, state: Edge, qubit: int) -> float:
    """Probability of measuring ``1`` on ``qubit`` (no collapse)."""
    if manager.is_zero_edge(state):
        raise SimulationError("cannot measure the all-zero pseudo-state")
    target_level = manager.level_of_qubit(qubit)
    norms = _subtree_norms(manager, state)

    def node_norm(edge: Edge) -> float:
        if manager.is_zero_edge(edge):
            return 0.0
        weight_sq = abs(manager.system.to_complex(edge.weight)) ** 2
        if edge.is_terminal:
            return weight_sq
        return weight_sq * norms[edge.node.uid]

    def recurse(edge: Edge) -> float:
        """Probability mass with qubit == 1 inside this sub-DD."""
        if manager.is_zero_edge(edge) or edge.is_terminal:
            return 0.0
        weight_sq = abs(manager.system.to_complex(edge.weight)) ** 2
        if edge.node.level == target_level:
            return weight_sq * node_norm(edge.node.edges[1])
        return weight_sq * sum(recurse(child) for child in edge.node.edges)

    total = node_norm(state)
    if total <= 0.0:
        raise SimulationError("state has zero norm")
    return recurse(state) / total


def measure_and_collapse(
    manager: DDManager,
    state: Edge,
    qubit: int,
    outcome: Optional[int] = None,
    seed: Optional[int] = None,
    renormalize: Optional[bool] = None,
):
    """Measure one qubit and collapse the state.

    Returns ``(outcome, probability, collapsed_state)``.

    ``outcome`` forces a post-selection (raises on probability 0);
    otherwise the outcome is sampled with ``seed``.

    Renormalisation divides the collapsed state by ``sqrt(p)`` -- a
    value that generally lies *outside* ``Q[omega]`` (e.g. ``sqrt(1/2)``
    is fine but ``sqrt(3/8)`` is not), so by default (``renormalize =
    None``) the numeric system renormalises and the algebraic systems
    return the exact *unnormalised* projection together with the exact
    probability; downstream consumers divide amplitudes by ``sqrt(p)``
    only at read-out time.  This mirrors how exact DD packages handle
    measurement.
    """
    if manager.is_zero_edge(state):
        raise SimulationError("cannot measure the all-zero pseudo-state")
    probability_one = measure_probabilities(manager, state, qubit)
    if outcome is None:
        rng = random.Random(seed)
        outcome = 1 if rng.random() < probability_one else 0
    if outcome not in (0, 1):
        raise SimulationError("measurement outcome must be 0 or 1")
    probability = probability_one if outcome == 1 else 1.0 - probability_one
    if probability <= 1e-15:
        raise SimulationError(
            f"cannot post-select outcome {outcome} with probability ~0"
        )
    collapsed = _project(manager, state, manager.level_of_qubit(qubit), outcome)
    if renormalize is None:
        renormalize = manager.system.supports_arbitrary_complex
    if renormalize:
        if not manager.system.supports_arbitrary_complex:
            raise SimulationError(
                "exact renormalisation by 1/sqrt(p) leaves the algebraic "
                "ring; use renormalize=False (the default for algebraic "
                "managers) and track the returned probability instead"
            )
        import math as _math

        factor = manager.system.from_complex(complex(1.0 / _math.sqrt(probability), 0.0))
        collapsed = manager.scale(collapsed, factor)
    return (outcome, probability, collapsed)


def _project(manager: DDManager, state: Edge, target_level: int, bit: int) -> Edge:
    """Zero out the opposite branch of ``target_level`` everywhere."""
    cache: Dict[int, Edge] = {}

    def recurse(edge: Edge) -> Edge:
        if manager.is_zero_edge(edge) or edge.is_terminal:
            return edge
        node = edge.node
        cached = cache.get(node.uid)
        if cached is None:
            if node.level == target_level:
                children = [manager.zero_edge(), manager.zero_edge()]
                children[bit] = node.edges[bit]
            else:
                children = [recurse(child) for child in node.edges]
            if all(manager.is_zero_edge(child) for child in children):
                cached = manager.zero_edge()
            else:
                cached = manager.make_node(node.level, children)
            cache[node.uid] = cached
        return manager.scale(cached, edge.weight)

    return recurse(state)


def sample_counts(
    manager: DDManager,
    state: Edge,
    shots: int,
    seed: Optional[int] = None,
) -> Dict[int, int]:
    """Sample ``shots`` full computational-basis measurements.

    Returns a histogram mapping basis index to count.  The state is not
    modified (each shot is an independent measurement of a fresh copy).
    """
    if shots < 0:
        raise SimulationError("shots must be non-negative")
    if manager.is_zero_edge(state):
        raise SimulationError("cannot sample from the all-zero pseudo-state")
    rng = random.Random(seed)
    norms = _subtree_norms(manager, state)
    system = manager.system

    def edge_mass(edge: Edge) -> float:
        if manager.is_zero_edge(edge):
            return 0.0
        weight_sq = abs(system.to_complex(edge.weight)) ** 2
        if edge.is_terminal:
            return weight_sq
        return weight_sq * norms[edge.node.uid]

    histogram: Dict[int, int] = {}
    for _ in range(shots):
        index = 0
        edge = state
        while not edge.is_terminal:
            node = edge.node
            mass_zero = edge_mass(node.edges[0])
            mass_one = edge_mass(node.edges[1])
            total = mass_zero + mass_one
            bit = 1 if rng.random() * total >= mass_zero else 0
            if bit:
                index |= 1 << (node.level - 1)
            edge = node.edges[bit]
        histogram[index] = histogram.get(index, 0) + 1
    return histogram
