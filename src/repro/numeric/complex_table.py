r"""The tolerance-based complex value table of numerical QMDD packages.

State-of-the-art QMDD implementations (paper Section III) store every
edge weight in a global *complex number table*.  When a computation
produces a new value, the table is searched for an existing entry within
a configurable tolerance ``eps`` (component-wise on real and imaginary
part); if one is found, the new value is *identified* with the stored
entry.  This is what lets the package detect redundancies despite
floating-point round-off -- and simultaneously what destroys information
when ``eps`` is too large (paper Example 4/5).

Key behavioural details reproduced here:

* ``eps = 0`` means bit-exact comparison -- two results that differ in
  the last mantissa bit create *distinct* entries, so structurally equal
  sub-matrices are no longer shared (the exponential blow-up of
  Figs. 3a/4a/5a for high accuracy).
* The table is seeded with exact anchors (0 and 1; more generally every
  previously stored value acts as an anchor).  With a large ``eps``,
  small genuine amplitudes are *snapped* onto the 0 entry -- the
  information-loss mechanism that produces the all-zero state vector of
  Example 5 / Fig. 2.
* Lookup is O(1) via bucket hashing on ``round(value / grid)`` with the
  eight neighbouring buckets probed, where ``grid`` is derived from
  ``eps`` (for ``eps = 0`` a plain exact dictionary is used).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["ComplexTable", "ComplexEntry"]

import struct


def _round_to_single(value: complex) -> complex:
    """Round both components through IEEE-754 binary32."""
    re = struct.unpack("f", struct.pack("f", value.real))[0]
    im = struct.unpack("f", struct.pack("f", value.imag))[0]
    return complex(re, im)


class ComplexEntry:
    """An interned complex value.

    Identity (``is``) of entries encodes tolerance-equality of values:
    the whole point of the table is that two values within ``eps`` of
    each other are represented by the *same* entry object, making
    edge-weight comparison O(1) and tolerance-transitive within a run.
    """

    __slots__ = ("value", "index")

    def __init__(self, value: complex, index: int) -> None:
        self.value = value
        self.index = index

    def __repr__(self) -> str:
        return f"ComplexEntry({self.value!r}, index={self.index})"


class ComplexTable:
    """Global complex-value interning table with tolerance ``eps``.

    Parameters
    ----------
    eps:
        The tolerance value of the paper (``0`` for bit-exact matching).
        Two complex numbers are identified when *both* the real and the
        imaginary parts differ by at most ``eps`` from a stored entry --
        the component-wise criterion used by the established QMDD
        package.
    """

    def __init__(self, eps: float = 0.0, precision: str = "double") -> None:
        if eps < 0:
            raise ValueError("tolerance eps must be non-negative")
        if precision not in ("double", "single"):
            raise ValueError(f"unknown precision {precision!r}")
        self.eps = float(eps)
        #: "single" rounds every stored value through IEEE-754 binary32,
        #: modelling a lower-precision implementation (the paper argues
        #: the accuracy floor scales with the machine precision; this
        #: knob lets the evaluation demonstrate it in the cheap
        #: direction).
        self.precision = precision
        # Tombstoned (None) slots are left behind by sweep_entries;
        # indices are append-only and never reused.
        self._entries: list[Optional[ComplexEntry]] = []
        self._exact: Dict[Tuple[float, float], ComplexEntry] = {}
        # Bucket grid for tolerance search: one bucket per 2*eps square so
        # a candidate within eps is always in the same or a neighbouring
        # bucket of its anchor.
        self._grid = 2.0 * self.eps if self.eps > 0 else 0.0
        self._buckets: Dict[Tuple[int, int], list[ComplexEntry]] = {}
        # Observability counters (see repro.obs): ``lookups`` is bumped
        # once per probe -- the single hot-path increment -- while
        # ``inserts`` is bumped on the (cold) insert path, so hits and
        # identifications are derived, never separately counted.
        self.lookups = 0
        self.inserts = 0
        self.swept = 0
        self.zero = self.lookup(complex(0.0, 0.0))
        self.one = self.lookup(complex(1.0, 0.0))

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """The index space size (tombstones included; never shrinks)."""
        return len(self._entries)

    def entries(self) -> Tuple[Optional[ComplexEntry], ...]:
        return tuple(self._entries)

    def entry(self, index: int) -> Optional[ComplexEntry]:
        """The entry at ``index``, or ``None`` if out of range or swept.

        Sanitizer hook: lets the DD layer verify that an edge weight's
        ``index`` round-trips to the very same interned object.
        """
        if isinstance(index, int) and 0 <= index < len(self._entries):
            return self._entries[index]
        return None

    def _bucket_key(self, value: complex) -> Tuple[int, int]:
        return (int(round(value.real / self._grid)), int(round(value.imag / self._grid)))

    def _find_within_eps(self, value: complex) -> Optional[ComplexEntry]:
        key = self._bucket_key(value)
        best: Optional[ComplexEntry] = None
        best_distance = float("inf")
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for entry in self._buckets.get((key[0] + dx, key[1] + dy), ()):
                    dre = abs(entry.value.real - value.real)
                    dim = abs(entry.value.imag - value.imag)
                    if dre <= self.eps and dim <= self.eps:
                        distance = dre + dim
                        if distance < best_distance:
                            best, best_distance = entry, distance
        return best

    def lookup(self, value: complex) -> ComplexEntry:
        """Intern ``value``: return the entry it is identified with.

        With ``eps > 0`` the *stored* value of an existing nearby entry
        is returned (the incoming value is discarded -- this is the
        lossy identification step).  Otherwise a new entry is created.
        """
        self.lookups += 1
        value = complex(value)
        if self.precision == "single":
            value = _round_to_single(value)
        if self.eps == 0.0:  # repro-lint: allow[RL003] (eps=0 is an exact sentinel)
            key = (value.real + 0.0, value.imag + 0.0)  # normalise -0.0
            entry = self._exact.get(key)
            if entry is None:
                entry = self._insert(complex(*key))
                self._exact[key] = entry
            return entry
        found = self._find_within_eps(value)
        if found is not None:
            return found
        return self._insert(value)

    def _insert(self, value: complex) -> ComplexEntry:
        self.inserts += 1
        entry = ComplexEntry(value, len(self._entries))
        self._entries.append(entry)
        if self.eps > 0.0:
            self._buckets.setdefault(self._bucket_key(value), []).append(entry)
        return entry

    def sweep_entries(self, live_indices: "set[int]") -> int:
        """Garbage-collect exact-mode entries not in ``live_indices``.

        Only meaningful for ``eps == 0``: re-interning a swept value is
        bit-identical, so sweeping never changes results.  With
        ``eps > 0`` this is a no-op returning 0 -- every stored entry
        is an identification *anchor*, and removing one would change
        which entry later values within eps snap to (identification is
        only transitive within a run because anchors stay live).

        Swept slots are tombstoned (``None``) and indices never reused:
        unique-table keys embed entry indices, and a recycled index
        could alias two different values into one node key.
        """
        if self.eps > 0.0:
            return 0
        swept = 0
        entries = self._entries
        exact = self._exact
        for index, entry in enumerate(entries):
            if entry is None or index in live_indices:
                continue
            if entry is self.zero or entry is self.one:
                continue
            key = (entry.value.real + 0.0, entry.value.imag + 0.0)
            if exact.get(key) is entry:
                del exact[key]
            entries[index] = None
            swept += 1
        self.swept += swept
        return swept

    # ------------------------------------------------------------------
    # Convenience predicates used by the DD layer
    # ------------------------------------------------------------------

    def is_zero(self, entry: ComplexEntry) -> bool:
        return entry is self.zero

    def is_one(self, entry: ComplexEntry) -> bool:
        return entry is self.one

    @property
    def identifications(self) -> int:
        """Probes answered by an existing entry (the lossy eps-snaps).

        Every lookup either identifies with a stored value or inserts a
        fresh one, so this is exact without a hot-path branch.  With
        ``eps == 0`` an identification is a bit-exact re-probe (lossless
        sharing); with ``eps > 0`` it is the paper's information-losing
        identification step (Example 4/5).
        """
        return self.lookups - self.inserts

    def statistics(self) -> Dict[str, float]:
        """Table health metrics surfaced by the evaluation harness.

        Reports the uniform engine-table schema (size/hits/misses/
        inserts/evictions, see :mod:`repro.obs`) plus the table-specific
        extras (``eps``, ``buckets``, ``identifications``).  With
        ``eps > 0`` entries are never evicted (tolerance-transitivity
        relies on every anchor staying live); in exact mode the garbage
        collector may sweep unreferenced entries (``swept``).
        """
        live = float(len(self._entries) - self.swept)
        return {
            "size": live,
            "hits": float(self.identifications),
            "misses": float(self.inserts),
            "inserts": float(self.inserts),
            "evictions": float(self.swept),
            "swept": float(self.swept),
            "entries": live,
            "identifications": float(self.identifications),
            "eps": self.eps,
            "buckets": float(len(self._buckets)) if self.eps > 0 else float(len(self._exact)),
        }
