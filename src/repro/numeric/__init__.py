"""Floating-point complex number handling for *numerical* QMDDs.

This package models the state of the art the paper critiques: IEEE-754
doubles with a tolerance-based identification table
(:class:`~repro.numeric.complex_table.ComplexTable`).
"""

from repro.numeric.complex_table import ComplexEntry, ComplexTable

__all__ = ["ComplexEntry", "ComplexTable"]
