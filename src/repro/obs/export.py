r"""Trace and metrics exporters.

Two span formats are produced from a :class:`~repro.obs.tracing.Tracer`
ring:

* **JSONL** -- one JSON object per completed span (name, start,
  seconds, depth, attrs).  Greppable, diffable, streamable.
* **Chrome ``trace_event`` JSON** -- the *JSON Object Format* of the
  Trace Event specification: ``{"traceEvents": [...]}`` where each span
  becomes a complete event (``"ph": "X"``) with microsecond ``ts`` /
  ``dur``.  The file loads directly in Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``.

:func:`validate_chrome_trace` is the schema check used by the test
suite and the CI ``obs-smoke`` job: it returns a list of problems
(empty for a valid trace) instead of raising, so callers can report
every defect at once.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.tracing import Span

__all__ = [
    "spans_to_jsonl",
    "spans_to_chrome_trace",
    "write_jsonl",
    "write_chrome_trace",
    "validate_chrome_trace",
    "aggregate_spans",
]


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One compact JSON object per span, separated by newlines."""
    lines = []
    for span in spans:
        record = span.to_dict()
        record["attrs"] = _json_safe(record["attrs"])
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines)


def spans_to_chrome_trace(
    spans: Iterable[Span],
    process_name: str = "repro-qmdd",
    process_names: Optional[Mapping[int, str]] = None,
) -> Dict[str, Any]:
    """The Trace Event *JSON Object Format* for a span collection.

    Every span maps to one complete event (``ph == "X"``); nesting is
    reconstructed by the viewer from ``ts``/``dur`` containment per
    ``pid``/``tid`` track.  Attributes ride along in ``args``.

    Locally recorded spans live on track ``(0, 0)`` -- the coordinator
    process, named ``process_name``.  Spans adopted from worker
    processes (:func:`repro.obs.propagate.reparent_spans`) carry the
    worker's real pid and each distinct pid gets its own
    ``process_name`` metadata event, so a multi-process batch trace
    opens in Perfetto with one lane per worker.  ``process_names``
    overrides the auto-generated ``"<process_name> worker <pid>"``
    labels per pid.
    """
    ordered = sorted(spans, key=lambda s: (s.start, -s.end))
    track_pids = sorted({span.pid for span in ordered} | {0})
    names = dict(process_names) if process_names is not None else {}
    events: List[Dict[str, Any]] = []
    for pid in track_pids:
        default = (
            process_name if pid == 0 else f"{process_name} worker {pid}"
        )
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": names.get(pid, default)},
            }
        )
    for span in ordered:
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.seconds * 1e6, 3),
                "pid": span.pid,
                "tid": span.tid,
                "args": _json_safe(span.attrs),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _json_safe(attrs: Mapping[str, Any]) -> Dict[str, Any]:
    safe: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        else:
            safe[key] = repr(value)
    return safe


def write_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write the JSONL export; returns the number of spans written."""
    listed = list(spans)
    with open(path, "w", encoding="utf-8") as handle:
        text = spans_to_jsonl(listed)
        if text:
            handle.write(text + "\n")
    return len(listed)


def write_chrome_trace(
    spans: Iterable[Span],
    path: str,
    process_name: str = "repro-qmdd",
    process_names: Optional[Mapping[int, str]] = None,
) -> Dict[str, Any]:
    """Write (and return) the validated Chrome ``trace_event`` document.

    Raises ``ValueError`` if the produced document fails its own schema
    check -- a trace that will not load in the viewer must never be
    written silently.
    """
    document = spans_to_chrome_trace(
        spans, process_name=process_name, process_names=process_names
    )
    problems = validate_chrome_trace(document)
    if problems:
        raise ValueError("invalid Chrome trace produced: " + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


#: Event phases the validator accepts ("X" complete events plus "M"
#: metadata; the exporter only emits these two).
_VALID_PHASES = frozenset({"X", "M"})


def validate_chrome_trace(document: Any) -> List[str]:
    """Schema check for the Trace Event JSON Object Format.

    Returns a list of human-readable problems; an empty list means the
    document is structurally valid for Perfetto / ``chrome://tracing``.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"top level must be an object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: event must be an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: 'name' must be a non-empty string")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: {field!r} must be an integer")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{where}: {field!r} must be a non-negative number"
                    )
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: 'args' must be an object when present")
    return problems


def aggregate_spans(
    spans: Iterable[Span],
) -> List[Tuple[str, int, float, float, float]]:
    """Per-name aggregate ``(name, count, total_s, mean_s, max_s)``,
    sorted by total time descending (the ``profile`` CLI table)."""
    totals: Dict[str, List[float]] = {}
    counts: Dict[str, int] = {}
    peaks: Dict[str, float] = {}
    for span in spans:
        seconds = span.seconds
        totals.setdefault(span.name, []).append(seconds)
        counts[span.name] = counts.get(span.name, 0) + 1
        if seconds > peaks.get(span.name, -1.0):
            peaks[span.name] = seconds
    rows = []
    for name, values in totals.items():
        total = sum(values)
        rows.append((name, counts[name], total, total / counts[name], peaks[name]))
    rows.sort(key=lambda row: row[2], reverse=True)
    return rows
