r"""Cross-process trace-context propagation and span re-parenting.

The batch engine (:mod:`repro.exec.batch`) fans jobs out over worker
processes; each worker records its own spans against its own
:class:`~repro.obs.tracing.Tracer` -- a private monotonic timeline that
means nothing to any other process.  This module is the bridge that
turns those per-worker rings into one coherent distributed trace:

* :class:`TraceContext` is the picklable context carried by each
  :class:`~repro.api.RunRequest`: the batch-wide trace id, the span id
  of the coordinator's ``exec.batch`` span (every worker span's
  ultimate parent), and the coordinator tracer's wall-clock epoch
  anchor used for clock alignment.
* :func:`export_worker_spans` runs inside the worker: it serializes
  the tracer ring into a plain-dict payload (picklable, JSON-safe)
  together with the worker's pid and its own epoch anchor.  It is
  called on the success, failure *and* timeout paths, so a timed-out
  job still ships every span it completed before the alarm fired.
* :func:`reparent_spans` runs in the coordinator: it translates each
  worker span's times into the coordinator tracer's timeline (the
  per-worker **monotonic-clock offset** is the difference of the two
  tracers' wall-clock epoch anchors), re-bases span depths under the
  ``exec.batch`` span, tags every span with the trace id (and the
  top-level spans with their parent span id), assigns the worker's pid
  as the span's export track, and lands the spans in the coordinator's
  ring via :meth:`~repro.obs.tracing.Tracer.adopt`.

The result: one tracer ring -- and therefore one JSONL / Chrome
``trace_event`` export -- containing the coordinator's ``exec.batch``
span plus every worker's ``exec.job``/``sim.gate``/``dd.apply.direct``
spans on distinct per-worker tracks, all on a single aligned timeline.

Trace ids never influence simulation; results stay byte-identical with
tracing on or off (asserted by ``tests/exec/test_trace_batch.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.tracing import Span, Tracer

__all__ = [
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "export_worker_spans",
    "export_local_spans",
    "reparent_spans",
]


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 hex chars, W3C-traceparent sized)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 hex chars)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The trace context one job carries across the process boundary.

    ``trace_id``
        Batch-wide id; every span of every worker is tagged with it.
    ``parent_span_id``
        Span id of the coordinator's ``exec.batch`` span -- the parent
        every worker-side top-level span is re-attached to.
    ``epoch_unix``
        Wall-clock anchor (``time.time()``) of the coordinator
        tracer's monotonic epoch.  Workers ship their own anchor home
        and the coordinator aligns the two timelines by their
        difference.
    """

    trace_id: str
    parent_span_id: str
    epoch_unix: float

    @classmethod
    def for_tracer(cls, tracer: Tracer) -> "TraceContext":
        """A fresh context rooted at ``tracer``'s timeline."""
        return cls(
            trace_id=new_trace_id(),
            parent_span_id=new_span_id(),
            epoch_unix=tracer.epoch_unix,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "epoch_unix": self.epoch_unix,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(payload["trace_id"]),
            parent_span_id=str(payload["parent_span_id"]),
            epoch_unix=float(payload["epoch_unix"]),
        )


def export_worker_spans(
    tracer: Tracer, context: Optional[TraceContext]
) -> Dict[str, Any]:
    """Serialize a worker tracer's ring into a picklable payload.

    Called inside the worker process on every outcome path (success,
    typed failure, timeout).  The payload carries everything the
    coordinator needs for re-parenting: the worker's pid, its epoch
    anchor, the number of spans that overflowed the worker ring, and
    the span records themselves (oldest first).
    """
    # Inlined Span.to_dict: this runs once per recorded span on every
    # job outcome, so the per-span cost is part of the traced-batch
    # overhead contract (benchmarks/bench_trace_overhead.py).
    records = []
    append = records.append
    for span in tracer._ring:
        start = span.start
        end = span.end
        append(
            {
                "name": span.name,
                "start": start,
                "seconds": end - start if end > start else 0.0,
                "depth": span.depth,
                "pid": span.pid,
                "tid": span.tid,
                "attrs": dict(span.attrs),
            }
        )
    return {
        "pid": os.getpid(),
        "epoch_unix": tracer.epoch_unix,
        "trace_id": context.trace_id if context is not None else None,
        "parent_span_id": (
            context.parent_span_id if context is not None else None
        ),
        "dropped": tracer.dropped,
        "spans": records,
    }


def export_local_spans(
    tracer: Tracer, context: Optional[TraceContext]
) -> Dict[str, Any]:
    """Zero-copy variant of :func:`export_worker_spans` for in-process jobs.

    The ``workers=1`` fallback of the batch engine runs jobs in the
    coordinator's own process, so there is no pickle boundary and the
    dict round-trip of :func:`export_worker_spans` is pure overhead.
    This exporter hands the live :class:`~repro.obs.tracing.Span`
    objects over under the ``span_objects`` key instead;
    :func:`reparent_spans` retags them in place.  The payload is NOT
    picklable or JSON-safe -- never send it across a process boundary.
    """
    return {
        "pid": os.getpid(),
        "epoch_unix": tracer.epoch_unix,
        "trace_id": context.trace_id if context is not None else None,
        "parent_span_id": (
            context.parent_span_id if context is not None else None
        ),
        "dropped": tracer.dropped,
        "span_objects": tracer.spans(),
    }


def reparent_spans(
    tracer: Tracer,
    payload: Dict[str, Any],
    parent_depth: int = 0,
    tid: int = 0,
) -> List[Span]:
    """Adopt one worker payload into the coordinator tracer's ring.

    Each worker span becomes a :class:`~repro.obs.tracing.Span` on the
    coordinator timeline:

    * ``start``/``end`` are shifted by the per-worker clock offset
      (``worker epoch anchor - coordinator epoch anchor``), so spans
      from different workers interleave correctly on one timeline;
    * ``depth`` is re-based to ``parent_depth + 1`` (the worker's own
      nesting is preserved below that), expressing the re-parenting
      under the coordinator's ``exec.batch`` span;
    * every span is tagged with the trace id and its worker pid;
      worker-side *top-level* spans (depth 0 in the worker) addition-
      ally carry ``parent_span_id`` -- their explicit link to the
      ``exec.batch`` span;
    * ``pid``/``tid`` become the span's export track, giving every
      worker its own lane in the Chrome trace.

    Returns the adopted spans (also landed in ``tracer``'s ring).
    """
    offset = float(payload["epoch_unix"]) - tracer.epoch_unix
    worker_pid = int(payload["pid"])
    trace_id = payload.get("trace_id")
    parent_span_id = payload.get("parent_span_id")
    rebase = parent_depth + 1

    objects = payload.get("span_objects")
    if objects is not None:
        # In-process fast path (export_local_spans): the spans already
        # exist in this process, so retag and reclock them in place --
        # no dict round-trip, no reconstruction.  Ring overflow is
        # settled in one bulk computation (equivalent to per-append
        # eviction counting) and the ring extended once.
        for span in objects:
            attrs = span.attrs
            attrs["worker_pid"] = worker_pid
            if trace_id is not None:
                attrs["trace_id"] = trace_id
            depth = span.depth
            if depth == 0 and parent_span_id is not None:
                attrs["parent_span_id"] = parent_span_id
            span.tracer = tracer
            span.start += offset
            span.end += offset
            span.depth = rebase + depth
            span.pid = worker_pid
            span.tid = tid
        ring = tracer._ring
        overflow = len(ring) + len(objects) - tracer.capacity
        if overflow > 0:
            tracer.dropped += overflow
        ring.extend(objects)
        return list(objects)

    adopted: List[Span] = []
    append = adopted.append
    adopt = tracer.adopt
    new = Span.__new__
    # Hot loop: one iteration per worker span per job outcome (part of
    # the traced-batch overhead contract).  The coordinator owns the
    # payload once it arrives, so the record's attrs dict is tagged in
    # place instead of copied, and the Span is built by direct slot
    # stores rather than __init__.
    for record in payload.get("spans", ()):
        attrs = record["attrs"]
        attrs["worker_pid"] = worker_pid
        if trace_id is not None:
            attrs["trace_id"] = trace_id
        depth = record["depth"]
        if depth == 0 and parent_span_id is not None:
            attrs["parent_span_id"] = parent_span_id
        span = new(Span)
        span.tracer = tracer
        span.name = record["name"]
        span.attrs = attrs
        start = record["start"] + offset
        span.start = start
        span.end = start + record["seconds"]
        span.depth = rebase + depth
        span.pid = worker_pid
        span.tid = tid
        adopt(span)
        append(span)
    return adopted
