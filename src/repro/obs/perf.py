r"""The performance observatory: versioned benchmark records, baselines
and noise-aware regression comparison.

The engine's open roadmap items (persistent service, native kernels)
all hinge on *trustworthy latency evidence*.  This module is that
evidence chain:

* a **versioned result schema** -- every benchmark run serializes to a
  ``BENCH_<workload>.json`` document carrying the workload name, the
  exact :class:`~repro.api.SimulatorConfig` used, median-of-N wall
  times with a MAD (median-absolute-deviation) noise band, and
  registry-derived counters (peak nodes, gate counts, compute-cache
  hit rates) that explain *why* a timing moved;
* a **baseline store** -- records committed under
  ``benchmarks/baselines/`` are the reference the CI ``perf-smoke``
  job (and ``repro-qmdd perf compare``) measures against;
* **noise-aware comparison** -- a current record regresses only when
  its median exceeds the baseline median by more than the noise band

  .. code-block:: text

      band = max(3 * 1.4826 * (mad_base + mad_current),
                 min_rel * median_base)

  i.e. three combined robust standard deviations, floored at a
  relative guard (default 5%) so microsecond-scale workloads do not
  flap on scheduler jitter.

Schema problems (wrong version, missing fields, mismatched workloads)
raise :class:`~repro.errors.BenchFormatError`; comparison never guesses
across incompatible records.

The CLI front end is ``repro-qmdd perf record|compare|report``; see
``docs/OBSERVABILITY.md`` for the workflow (record a baseline, commit
it, let CI compare every push).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import BenchFormatError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchComparison",
    "BenchRecord",
    "TimingStats",
    "bench_filename",
    "compare_records",
    "format_comparison_report",
    "format_record_report",
    "list_records",
    "load_record",
    "mad",
    "median",
    "record_workload",
    "save_record",
    "workload_names",
]

#: Version stamp written into (and required from) every BENCH_*.json.
BENCH_SCHEMA_VERSION = 1

#: Registry counters copied into the record when present -- the ones
#: that explain a timing shift (work volume, structure size, caching).
COUNTER_KEYS: Tuple[str, ...] = (
    "sim.gates",
    "sim.state.peak_nodes",
    "sim.state.max_bit_width",
    "dd.apply.direct",
    "dd.apply.delegated",
    "dd.ct.mat_vec.hit_rate",
    "dd.ct.vec_add.hit_rate",
    "dd.gc.collections",
    "dd.gc.peak_resident_nodes",
)


def median(values: Sequence[float]) -> float:
    """The middle value (mean of the middle two for even counts)."""
    if not values:
        raise BenchFormatError("median of an empty sample set")
    ordered = sorted(values)
    half = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[half]
    return (ordered[half - 1] + ordered[half]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation -- the robust spread estimator."""
    center = median(values)
    return median([abs(value - center) for value in values])


@dataclass(frozen=True)
class TimingStats:
    """Median-of-N timing with its MAD noise estimate.

    ``samples`` keeps the raw per-repeat seconds so a record can be
    re-analysed (different band policy) without re-running anything.
    """

    median: float
    mad: float
    repeats: int
    samples: Tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "TimingStats":
        if not samples:
            raise BenchFormatError("timing requires at least one sample")
        return cls(
            median=median(samples),
            mad=mad(samples),
            repeats=len(samples),
            samples=tuple(float(sample) for sample in samples),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "median_seconds": self.median,
            "mad_seconds": self.mad,
            "repeats": self.repeats,
            "samples_seconds": list(self.samples),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TimingStats":
        try:
            return cls(
                median=float(payload["median_seconds"]),
                mad=float(payload["mad_seconds"]),
                repeats=int(payload["repeats"]),
                samples=tuple(
                    float(sample) for sample in payload["samples_seconds"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchFormatError(f"malformed timing block: {exc}") from exc


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark result -- the unit stored as ``BENCH_*.json``."""

    workload: str
    config: Dict[str, Any]
    timing: TimingStats
    counters: Dict[str, Any] = field(default_factory=dict)
    created_unix: float = 0.0
    schema: int = BENCH_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "workload": self.workload,
            "config": dict(self.config),
            "timing": self.timing.to_dict(),
            "counters": dict(self.counters),
            "created_unix": self.created_unix,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchRecord":
        if not isinstance(payload, Mapping):
            raise BenchFormatError(
                f"benchmark record must be a JSON object, got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema != BENCH_SCHEMA_VERSION:
            raise BenchFormatError(
                f"unsupported benchmark schema {schema!r} "
                f"(this build reads version {BENCH_SCHEMA_VERSION})"
            )
        for key in ("workload", "config", "timing"):
            if key not in payload:
                raise BenchFormatError(f"benchmark record missing {key!r}")
        config = payload["config"]
        if not isinstance(config, Mapping):
            raise BenchFormatError("benchmark 'config' must be an object")
        return cls(
            workload=str(payload["workload"]),
            config=dict(config),
            timing=TimingStats.from_dict(payload["timing"]),
            counters=dict(payload.get("counters", {})),
            created_unix=float(payload.get("created_unix", 0.0)),
            schema=BENCH_SCHEMA_VERSION,
        )


def bench_filename(workload: str) -> str:
    """Canonical file name for one workload's record."""
    safe = workload.replace("/", "_")
    return f"BENCH_{safe}.json"


def save_record(record: BenchRecord, directory: str) -> str:
    """Write ``record`` into ``directory`` (created if missing)."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, bench_filename(record.workload))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_record(path: str) -> BenchRecord:
    """Read and validate one ``BENCH_*.json`` file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise BenchFormatError(f"cannot read benchmark record {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchFormatError(f"{path} is not valid JSON: {exc}") from exc
    return BenchRecord.from_dict(payload)


def list_records(directory: str) -> List[str]:
    """Paths of every ``BENCH_*.json`` under ``directory``, sorted."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.startswith("BENCH_") and name.endswith(".json")
    )


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def _workloads() -> Dict[str, Tuple[Callable[[], Any], str]]:
    """Named benchmark circuits with their default number system.

    Lazy so ``perf.py`` imports cheaply.  Each entry pairs a circuit
    builder with the system its gates suit: the exactly representable
    workloads default to the paper's algebraic-gcd representation, the
    QFT (non-Clifford+T phases) to the numeric one.
    """
    from repro.algorithms.grover import grover_circuit
    from repro.circuits.library import ghz_circuit, qft_circuit

    return {
        # The paper's benchmark 1 at the size used throughout the docs:
        # exactly representable gates, heavy multi-control traffic.
        "grover_8q": (lambda: grover_circuit(8, marked=3), "algebraic-gcd"),
        # Small/fast variant for CI smoke runs.
        "grover_5q": (lambda: grover_circuit(5, marked=3), "algebraic-gcd"),
        # Structure-light baseline: linear entanglement, trivial DD.
        "ghz_16q": (lambda: ghz_circuit(16), "algebraic-gcd"),
        # Non-exact phases: exercises the numeric weight path.
        "qft_8q": (lambda: qft_circuit(8), "numeric"),
    }


def workload_names() -> List[str]:
    """The named workloads ``record_workload`` accepts, sorted."""
    return sorted(_workloads())


def record_workload(
    workload: str,
    repeats: int = 5,
    system: Optional[str] = None,
    warmup: int = 1,
    now: Optional[float] = None,
) -> BenchRecord:
    """Run one named workload ``repeats`` times and build its record.

    Each repeat is a full cold run through :func:`repro.api.run` (fresh
    manager, fresh tables) so the medians compare like-for-like across
    processes and machines.  Counters are taken from the final repeat's
    telemetry snapshot.  ``system=None`` uses the workload's default
    number system (see ``_workloads``).
    """
    if repeats < 1:
        raise BenchFormatError("repeats must be >= 1")
    builders = _workloads()
    if workload not in builders:
        raise BenchFormatError(
            f"unknown workload {workload!r}; known: {', '.join(sorted(builders))}"
        )
    # Lazy import: repro.api imports this package's siblings.
    from repro.api import RunRequest, SimulatorConfig, run

    builder, default_system = builders[workload]
    config = SimulatorConfig(system=system or default_system)
    circuit = builder()
    for _ in range(warmup):
        run(RunRequest(circuit, config=config))
    samples: List[float] = []
    metrics: Dict[str, Any] = {}
    for _ in range(repeats):
        result = run(RunRequest(circuit, config=config))
        samples.append(result.seconds)
        metrics = result.metrics
    counters = {key: metrics[key] for key in COUNTER_KEYS if key in metrics}
    return BenchRecord(
        workload=workload,
        config={"system": config.system, "label": config.label},
        timing=TimingStats.from_samples(samples),
        counters=counters,
        created_unix=time.time() if now is None else now,
    )


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

#: MAD -> standard-deviation consistency constant (normal distribution).
MAD_SIGMA = 1.4826

#: Band width in combined robust standard deviations.
BAND_SIGMAS = 3.0

#: Relative floor of the noise band: shifts below this fraction of the
#: baseline median never gate, however tight the MADs are.
DEFAULT_MIN_REL = 0.05


@dataclass(frozen=True)
class BenchComparison:
    """Noise-aware verdict of one current record against its baseline."""

    workload: str
    baseline_median: float
    current_median: float
    band_seconds: float
    regressed: bool
    improved: bool

    @property
    def ratio(self) -> float:
        """current / baseline median (1.0 when the baseline is zero)."""
        if self.baseline_median <= 0.0:
            return 1.0
        return self.current_median / self.baseline_median

    @property
    def verdict(self) -> str:
        if self.regressed:
            return "REGRESSED"
        if self.improved:
            return "improved"
        return "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "baseline_median_seconds": self.baseline_median,
            "current_median_seconds": self.current_median,
            "band_seconds": self.band_seconds,
            "ratio": self.ratio,
            "verdict": self.verdict,
        }


def compare_records(
    baseline: BenchRecord,
    current: BenchRecord,
    min_rel: float = DEFAULT_MIN_REL,
) -> BenchComparison:
    """Compare two records of the *same* workload, noise-aware.

    Raises :class:`~repro.errors.BenchFormatError` when the records
    describe different workloads or configurations -- a comparison
    across those would be meaningless, not merely noisy.
    """
    if baseline.workload != current.workload:
        raise BenchFormatError(
            f"cannot compare workload {current.workload!r} "
            f"against baseline {baseline.workload!r}"
        )
    if baseline.config != current.config:
        raise BenchFormatError(
            f"workload {baseline.workload!r}: records use different "
            f"configurations ({baseline.config} vs {current.config})"
        )
    band = max(
        BAND_SIGMAS * MAD_SIGMA * (baseline.timing.mad + current.timing.mad),
        min_rel * baseline.timing.median,
    )
    delta = current.timing.median - baseline.timing.median
    return BenchComparison(
        workload=baseline.workload,
        baseline_median=baseline.timing.median,
        current_median=current.timing.median,
        band_seconds=band,
        regressed=delta > band,
        improved=delta < -band,
    )


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f}ms"
    return f"{seconds:8.3f}s "


def format_record_report(records: Sequence[BenchRecord]) -> str:
    """Human-readable table of benchmark records."""
    lines = [
        f"{'workload':<14} {'median':>10} {'mad':>10} {'reps':>4}  counters"
    ]
    for record in records:
        highlights = ", ".join(
            f"{key.rsplit('.', 1)[-1]}={record.counters[key]:g}"
            for key in ("sim.gates", "sim.state.peak_nodes")
            if key in record.counters
        )
        lines.append(
            f"{record.workload:<14} {_fmt_seconds(record.timing.median):>10}"
            f" {_fmt_seconds(record.timing.mad):>10}"
            f" {record.timing.repeats:>4}  {highlights}"
        )
    return "\n".join(lines)


def format_comparison_report(comparisons: Sequence[BenchComparison]) -> str:
    """Human-readable table of baseline-vs-current verdicts."""
    lines = [
        f"{'workload':<14} {'baseline':>10} {'current':>10} "
        f"{'ratio':>6} {'band':>10}  verdict"
    ]
    for comparison in comparisons:
        lines.append(
            f"{comparison.workload:<14}"
            f" {_fmt_seconds(comparison.baseline_median):>10}"
            f" {_fmt_seconds(comparison.current_median):>10}"
            f" {comparison.ratio:>5.2f}x"
            f" {_fmt_seconds(comparison.band_seconds):>10}"
            f"  {comparison.verdict}"
        )
    return "\n".join(lines)
