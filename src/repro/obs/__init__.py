r"""``repro.obs`` -- the unified observability layer of the QMDD engine.

The paper's whole evaluation is told through per-gate observables (node
count, numerical error, run-time, bit-width; Figs. 2-5).  This package
gives those observables -- and the engine internals behind them -- one
first-class home with three parts:

* a **metrics registry** (:mod:`repro.obs.metrics`): counters, gauges
  and fixed-bucket histograms under a dotted namespace
  (``dd.apply.direct``, ``dd.ct.mat_vec.hits``,
  ``numeric.eps.identifications``, ``rings.domega.bit_width``), with
  collector callbacks so the hot tables keep their plain-integer
  counters and pay nothing per operation;
* **structured span tracing** (:mod:`repro.obs.tracing`): nestable
  timed spans around gate application, normalisation, sanitizer passes
  and (in detail mode) unique-table lookups, buffered in a ring;
* **exporters** (:mod:`repro.obs.export`): JSONL and Chrome
  ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``),
  plus the schema validator the CI smoke job runs.

:class:`Telemetry` bundles one registry and one tracer; a
:class:`~repro.dd.manager.DDManager` owns a telemetry scope and the
:class:`~repro.sim.simulator.Simulator` inherits it (or accepts an
explicit ``telemetry=...``).  See ``docs/OBSERVABILITY.md`` for the
instrument catalog and span taxonomy.
"""

from __future__ import annotations

from repro.obs.export import (
    aggregate_spans,
    spans_to_chrome_trace,
    spans_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    merge_snapshots,
)
from repro.obs.propagate import (
    TraceContext,
    export_local_spans,
    export_worker_spans,
    new_span_id,
    new_trace_id,
    reparent_spans,
)
from repro.obs.tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "TraceContext",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "aggregate_spans",
    "export_local_spans",
    "export_worker_spans",
    "new_span_id",
    "new_trace_id",
    "reparent_spans",
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "merge_snapshots",
]


class Telemetry:
    """One observability scope: a metrics registry plus a tracer.

    Parameters
    ----------
    metrics:
        Enable push instruments (counters/gauges/histograms).  Pull
        collectors work regardless -- they cost nothing until sampled.
    tracing:
        Enable span recording (gate-level granularity).
    trace_detail:
        Additionally record fine-grained spans (normalisation,
        unique-table lookups).  Implies nothing unless ``tracing``.
    trace_capacity:
        Span ring size (most recent spans win).

    The default ``Telemetry()`` is the *metrics-only* mode every
    :class:`~repro.dd.manager.DDManager` gets when none is passed: all
    legacy ``statistics()`` consumers keep working, spans cost one
    no-op call per gate.  :meth:`disabled` is the near-zero-cost mode
    for overhead-sensitive runs.
    """

    __slots__ = ("metrics", "tracer")

    def __init__(
        self,
        metrics: bool = True,
        tracing: bool = False,
        trace_detail: bool = False,
        trace_capacity: int = 1 << 16,
    ) -> None:
        self.metrics = MetricsRegistry(enabled=metrics)
        self.tracer = Tracer(
            enabled=tracing, detail=trace_detail, capacity=trace_capacity
        )
        # Ring overflow is surfaced through the registry so it shows up
        # in snapshots (and sums across workers in merge_snapshots); a
        # pull collector keeps Span.__exit__ free of registry work.
        tracer = self.tracer
        self.metrics.register_collector(
            lambda: {"obs.trace.dropped": tracer.dropped}
        )

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A telemetry scope with every push path no-op'd.

        Collector-backed metrics (table counters) still appear in
        snapshots -- the underlying tables always count, exactly as the
        engine did before this layer existed -- but push instruments
        (apply routing, per-gate histograms, spans) are null.
        """
        return cls(metrics=False, tracing=False)

    @classmethod
    def tracing(
        cls, detail: bool = False, trace_capacity: int = 1 << 16
    ) -> "Telemetry":
        """Metrics plus span recording (the ``profile``/``trace`` CLI mode)."""
        return cls(
            metrics=True,
            tracing=True,
            trace_detail=detail,
            trace_capacity=trace_capacity,
        )

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.tracer.enabled
