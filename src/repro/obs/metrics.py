r"""Metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` owns every instrument of a telemetry scope
(usually one :class:`~repro.dd.manager.DDManager` plus the simulator
driving it).  Instruments live under a dotted namespace mirroring the
engine layers::

    dd.apply.direct            gate applications served by the kernel
    dd.ct.mat_vec.hits         compute-table hits (collected)
    numeric.eps.identifications  lossy eps-snaps in the complex table
    rings.domega.bit_width     widest interned ring coefficient

Two kinds of instruments coexist:

* **Push instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) are incremented at the call site.  They are used
  on *warm* paths (once per gate, once per pass) where an attribute
  increment is invisible.
* **Collectors** are callables returning a flat ``{name: value}``
  mapping, sampled lazily at :meth:`MetricsRegistry.snapshot` time.
  The *hot* paths (unique-table and compute-table probes, weight
  interning) keep their plain integer counters exactly as before and a
  collector reads them out -- zero added cost per operation.

Disabled registries hand out shared null instruments whose mutators are
no-ops (the near-zero-cost path); collectors still run at snapshot time
because their cost is paid only by the reader.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import SnapshotMergeError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "merge_snapshots",
]

MetricValue = Union[int, float]
Collector = Callable[[], Mapping[str, MetricValue]]

#: Default histogram bucket layout (powers of two; "le" upper bounds).
DEFAULT_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time numeric instrument (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: MetricValue = 0

    def set(self, value: MetricValue) -> None:
        self.value = value

    def set_max(self, value: MetricValue) -> None:
        """Keep the running maximum (for high-water marks)."""
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A fixed-bucket histogram (cumulative "le" buckets plus +Inf).

    Bucket layouts are fixed at registration so that snapshots from
    different runs of the same instrument are always comparable.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(upper <= lower for upper, lower in zip(bounds[1:], bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot: > buckets[-1]
        self.count = 0
        self.total = 0.0

    def observe(self, value: MetricValue) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def statistics(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": (self.total / self.count) if self.count else 0.0,
            "buckets": {
                **{f"le_{bound:g}": count for bound, count in zip(self.buckets, self.counts)},
                "inf": self.counts[-1],
            },
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class _NullCounter:
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0

    def set(self, value: MetricValue) -> None:
        return None

    def set_max(self, value: MetricValue) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0

    def observe(self, value: MetricValue) -> None:
        return None

    def statistics(self) -> Dict[str, Any]:
        return {"count": 0, "sum": 0.0, "mean": 0.0, "buckets": {}}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

AnyCounter = Union[Counter, _NullCounter]
AnyGauge = Union[Gauge, _NullGauge]
AnyHistogram = Union[Histogram, _NullHistogram]
Instrument = Union[Counter, Gauge, Histogram, _NullCounter, _NullGauge, _NullHistogram]


class MetricsRegistry:
    """Namespace of instruments plus lazily sampled collectors.

    Instrument factories are idempotent: asking twice for the same name
    returns the same object (or raises if the kind differs), so
    independent layers can share an instrument by name alone.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, Instrument] = {}
        self._kinds: Dict[str, str] = {}
        self._collectors: List[Collector] = []

    # -- instrument factories -------------------------------------------

    def _register(self, name: str, kind: str, factory: Callable[[], Instrument]) -> Instrument:
        existing_kind = self._kinds.get(name)
        if existing_kind is not None:
            if existing_kind != kind:
                raise ValueError(
                    f"instrument {name!r} already registered as {existing_kind}"
                )
            return self._instruments[name]
        instrument = factory()
        self._instruments[name] = instrument
        self._kinds[name] = kind
        return instrument

    def counter(self, name: str) -> AnyCounter:
        if not self.enabled:
            self._register(name, "counter", lambda: NULL_COUNTER)
            return NULL_COUNTER
        instrument = self._register(name, "counter", lambda: Counter(name))
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str) -> AnyGauge:
        if not self.enabled:
            self._register(name, "gauge", lambda: NULL_GAUGE)
            return NULL_GAUGE
        instrument = self._register(name, "gauge", lambda: Gauge(name))
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> AnyHistogram:
        if not self.enabled:
            self._register(name, "histogram", lambda: NULL_HISTOGRAM)
            return NULL_HISTOGRAM
        instrument = self._register(name, "histogram", lambda: Histogram(name, buckets))
        assert isinstance(instrument, Histogram)
        return instrument

    # -- collectors ------------------------------------------------------

    def register_collector(self, collector: Collector) -> None:
        """Attach a pull-side source sampled at every :meth:`snapshot`.

        The collector returns a flat ``{dotted.name: value}`` mapping;
        it is how the hot-path tables (plain integer counters, exactly
        as fast as before this layer existed) surface their state
        without paying any per-operation instrumentation cost.
        """
        self._collectors.append(collector)

    # -- reading ---------------------------------------------------------

    def names(self) -> List[str]:
        """All registered instrument names (collectors not sampled)."""
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Any]:
        """Flat ``{name: value}`` view of every instrument and collector.

        Counter/gauge values are numbers; histograms contribute a
        nested statistics dict under their own name.  Collector outputs
        are merged last, so a collector may refresh a name it owns.
        """
        snap: Dict[str, Any] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, (Histogram, _NullHistogram)):
                snap[name] = instrument.statistics()
            else:
                snap[name] = instrument.value
        for collector in self._collectors:
            snap.update(collector())
        return snap

    def value(self, name: str, default: Optional[Any] = None) -> Any:
        """One name out of a fresh :meth:`snapshot` (convenience)."""
        return self.snapshot().get(name, default)


# ---------------------------------------------------------------------------
# Cross-process snapshot merging (the batch engine's fleet view)
# ---------------------------------------------------------------------------

#: Instrument-name suffixes whose values are point-in-time / high-water
#: readings (gauges and collector-reported table sizes).  Merging
#: snapshots from independent jobs takes their **max** -- summing a
#: "current table size" across processes is meaningless.  Everything
#: else in the dotted namespace is a monotonic count and **sums**.
GAUGE_MERGE_SUFFIXES: Tuple[str, ...] = (
    ".size",
    ".nodes",
    ".peak_nodes",
    ".max_bit_width",
    ".bit_width",
    ".threshold",
    ".capacity",
)


def _merges_as_max(name: str) -> bool:
    return name.endswith(GAUGE_MERGE_SUFFIXES)


def _merge_histogram(
    name: str, accumulated: Dict[str, Any], incoming: Mapping[str, Any]
) -> Dict[str, Any]:
    """Bucket-wise histogram merge; bucket layouts must agree.

    Bucket layouts are fixed at registration, so same-name histograms
    from parallel jobs always share boundaries.  A layout mismatch
    means two *different* instruments collided on one name -- adding
    their cumulative ``le`` counts would silently produce a histogram
    that is wrong in every bucket, so it raises instead.  Histograms
    with no observations (disabled registries report empty buckets)
    merge with anything: they carry no counts to corrupt.
    """
    accumulated_buckets: Dict[str, MetricValue] = dict(
        accumulated.get("buckets", {})
    )
    incoming_buckets = incoming.get("buckets", {})
    if (
        accumulated_buckets
        and incoming_buckets
        and set(accumulated_buckets) != set(incoming_buckets)
    ):
        raise SnapshotMergeError(
            f"histogram {name!r} has mismatched bucket boundaries: "
            f"{sorted(accumulated_buckets)} vs {sorted(incoming_buckets)}; "
            "snapshots of the same instrument always share a layout -- "
            "these describe different instruments"
        )
    count = accumulated.get("count", 0) + incoming.get("count", 0)
    total = accumulated.get("sum", 0.0) + incoming.get("sum", 0.0)
    for bound, bucket_count in incoming_buckets.items():
        accumulated_buckets[bound] = (
            accumulated_buckets.get(bound, 0) + bucket_count
        )
    return {
        "count": count,
        "sum": total,
        "mean": (total / count) if count else 0.0,
        "buckets": accumulated_buckets,
    }


def merge_snapshots(snapshots: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge per-job :meth:`MetricsRegistry.snapshot` dicts fleet-wide.

    Used by the batch-execution engine (:mod:`repro.exec`) to aggregate
    the ``sim.*`` / ``dd.*`` telemetry that worker processes ship home
    with each job.  Merge semantics per value shape:

    * histogram statistics dicts merge bucket-wise (counts and sums
      add; the mean is recomputed);
    * names ending in one of :data:`GAUGE_MERGE_SUFFIXES` are treated
      as high-water/point-in-time readings and merge by ``max``;
    * every other numeric value is a monotonic count and merges by sum.

    The result is itself snapshot-shaped, so reporting helpers
    (``render_metrics``, hit-rate tables) work on it unchanged.

    Un-mergeable input raises :class:`~repro.errors.SnapshotMergeError`
    instead of silently mis-merging: an empty ``snapshots`` sequence
    (there is no fleet to describe -- callers with a legitimately empty
    batch should skip the merge), a non-empty snapshot sharing no
    instrument names with the non-empty snapshots before it (telemetry
    from unrelated subsystems: summing disjoint sets only fabricates a
    fleet that never existed), or same-name histograms with different
    bucket boundaries.  Empty snapshots (a worker that died before its
    first sample) merge with anything.
    """
    if not snapshots:
        raise SnapshotMergeError(
            "cannot merge an empty snapshot list; skip the merge when "
            "there are no per-job snapshots"
        )
    merged: Dict[str, Any] = {}
    for snapshot in snapshots:
        if merged and snapshot and not merged.keys() & snapshot.keys():
            raise SnapshotMergeError(
                "snapshot shares no instrument names with the snapshots "
                "merged so far; refusing to merge telemetry from "
                "unrelated subsystems (sample names so far: "
                f"{sorted(merged)[:3]}..., incoming: "
                f"{sorted(snapshot)[:3]}...)"
            )
        for name, value in snapshot.items():
            if isinstance(value, Mapping):
                merged[name] = _merge_histogram(name, merged.get(name, {}), value)
            elif name not in merged:
                merged[name] = value
            elif _merges_as_max(name):
                merged[name] = max(merged[name], value)
            else:
                merged[name] = merged[name] + value
    return merged
