r"""Structured span tracing with a bounded ring buffer.

A :class:`Span` is one timed region of engine work -- a gate
application, a sanitizer pass, a normalisation -- with a name, wall
times relative to the tracer epoch, a nesting depth and free-form
attributes (gate name, level, node delta, ...).  Spans nest through the
ordinary ``with`` protocol::

    with tracer.span("sim.gate", gate="H(q0)") as span:
        state = kernel.apply(state)
        span.set(node_delta=12)

Completed spans land in a ring buffer (``collections.deque`` with
``maxlen``), so long simulations keep the most recent window instead of
growing without bound.  Exporters (:mod:`repro.obs.export`) turn the
buffer into JSONL or Chrome ``trace_event`` JSON.

When the tracer is disabled, :meth:`Tracer.span` returns a shared
:data:`NULL_SPAN` whose context protocol is a no-op -- the cost of a
disabled span site is one method call, no allocation.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Any, Dict, List, Optional, Type, Union

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed, attributed region of work.

    ``pid``/``tid`` identify the export *track* the span belongs to.
    Locally recorded spans keep the default ``(0, 0)`` (the
    coordinator's own track); spans adopted from worker processes by
    :func:`repro.obs.propagate.reparent_spans` carry the worker's real
    process id so the Chrome exporter can lay every worker out on its
    own lane.
    """

    __slots__ = ("tracer", "name", "attrs", "depth", "start", "end", "pid", "tid")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.start = 0.0
        self.end = 0.0
        self.pid = 0
        self.tid = 0

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0 while the span is still open)."""
        return max(0.0, self.end - self.start)

    def set(self, **attrs: Any) -> None:
        """Attach or overwrite attributes (usable before ``__exit__``)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self.tracer
        stack = tracer._stack
        self.depth = len(stack)
        stack.append(self)
        self.start = tracer._clock() - tracer.epoch
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        tracer = self.tracer
        self.end = tracer._clock() - tracer.epoch
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        ring = tracer._ring
        if len(ring) == tracer.capacity:
            tracer.dropped += 1
        ring.append(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "depth": self.depth,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, seconds={self.seconds:.6f}, attrs={self.attrs!r})"


class _NullSpan:
    """Shared do-nothing span for disabled tracers."""

    __slots__ = ()
    name = "null"
    depth = 0
    start = 0.0
    end = 0.0
    seconds = 0.0
    pid = 0
    tid = 0
    attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


NULL_SPAN = _NullSpan()

AnySpan = Union[Span, _NullSpan]


class Tracer:
    """Span factory plus the bounded completion ring.

    Parameters
    ----------
    enabled:
        Disabled tracers hand out :data:`NULL_SPAN` (near-zero cost).
    detail:
        Opt-in flag read by instrumented layers for *fine-grained* spans
        (per-normalisation, per-unique-table-lookup).  Gate-level spans
        ignore it.
    capacity:
        Ring size; the most recent ``capacity`` completed spans are
        kept.
    """

    def __init__(
        self,
        enabled: bool = False,
        detail: bool = False,
        capacity: int = 1 << 16,
    ) -> None:
        if capacity < 1:
            raise ValueError("trace ring capacity must be positive")
        from collections import deque

        self.enabled = enabled
        self.detail = detail and enabled
        self.capacity = capacity
        self._clock = time.perf_counter
        self.epoch = self._clock()
        # Wall-clock anchor of the monotonic epoch, captured at the same
        # instant.  Cross-process span alignment (repro.obs.propagate)
        # subtracts two tracers' anchors to translate between their
        # otherwise-incomparable perf_counter timelines.
        self.epoch_unix = time.time()
        self._ring: "deque[Span]" = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self.dropped = 0  # completed spans pushed out of the ring

    def span(self, name: str, **attrs: Any) -> AnySpan:
        """A new span (enter it with ``with``); no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def adopt(self, span: Span) -> None:
        """Append an externally built (already timed) span to the ring.

        Used by :func:`repro.obs.propagate.reparent_spans` to land
        worker-process spans -- with their times already translated into
        this tracer's timeline -- in the coordinator's ring, where the
        ordinary exporters pick them up.  Ring overflow counts into
        :attr:`dropped` exactly as for locally recorded spans.
        """
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(span)

    def spans(self) -> List[Span]:
        """Completed spans, oldest first (a copy; safe to mutate)."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._ring)
