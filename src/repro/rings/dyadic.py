r"""Dyadic fractions :math:`\mathbb{D} = \{ a / 2^k \mid a, k \in \mathbb{Z}, k \ge 0 \}`.

The paper builds its algebraic number system as the extension
:math:`\mathbb{D}[\omega]` of the dyadic fractions (Section IV-A).  This
module provides the base ring with a canonical form: ``a`` odd, or
``(a, k) = (0, 0)`` for zero.  Dyadic fractions are exactly the binary
floating-point-representable rationals with unbounded mantissa and
exponent, which is why they mesh so naturally with quantum amplitudes
produced by Clifford+T circuits.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Tuple, Union

from repro.errors import InexactDivisionError, ZeroDivisionRingError

__all__ = ["Dyadic"]


class Dyadic:
    """A canonical dyadic fraction ``numerator / 2**exponent``.

    Canonical form: ``numerator`` is odd (or the pair is ``(0, 0)``) and
    ``exponent >= 0``.  Instances are immutable and hashable.
    """

    __slots__ = ("numerator", "exponent")

    def __init__(self, numerator: int, exponent: int = 0) -> None:
        if not isinstance(numerator, int) or not isinstance(exponent, int):
            raise TypeError("Dyadic components must be int")
        if numerator == 0:
            numerator, exponent = 0, 0
        else:
            while numerator % 2 == 0 and exponent > 0:
                numerator //= 2
                exponent -= 1
            if exponent < 0:
                numerator <<= -exponent
                exponent = 0
        object.__setattr__(self, "numerator", numerator)
        object.__setattr__(self, "exponent", exponent)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Dyadic instances are immutable")

    def __reduce__(self) -> "tuple[type, tuple[int, int]]":
        # Pickle via the constructor (canonical form round-trips).
        return (type(self), (self.numerator, self.exponent))

    # -- constructors ----------------------------------------------------

    @classmethod
    def zero(cls) -> "Dyadic":
        return cls(0, 0)

    @classmethod
    def one(cls) -> "Dyadic":
        return cls(1, 0)

    @classmethod
    def from_int(cls, n: int) -> "Dyadic":
        return cls(n, 0)

    @classmethod
    def from_fraction(cls, value: Fraction) -> "Dyadic":
        """Convert an exact rational; raises if the denominator is not a power of two."""
        denominator = value.denominator
        exponent = denominator.bit_length() - 1
        if 1 << exponent != denominator:
            raise InexactDivisionError(f"{value} is not a dyadic fraction")
        return cls(value.numerator, exponent)

    # -- protocol ----------------------------------------------------------

    def pair(self) -> Tuple[int, int]:
        return (self.numerator, self.exponent)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = Dyadic(other, 0)
        if not isinstance(other, Dyadic):
            return NotImplemented
        return self.pair() == other.pair()

    def __hash__(self) -> int:
        return hash(("Dyadic", self.numerator, self.exponent))

    def __bool__(self) -> bool:
        return self.numerator != 0

    def is_zero(self) -> bool:
        return self.numerator == 0

    def __lt__(self, other: "Dyadic") -> bool:
        return self.as_fraction() < other.as_fraction()

    def __le__(self, other: "Dyadic") -> bool:
        return self.as_fraction() <= other.as_fraction()

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: Union["Dyadic", int]) -> "Dyadic":
        if isinstance(other, int):
            other = Dyadic(other, 0)
        if not isinstance(other, Dyadic):
            return NotImplemented
        k = max(self.exponent, other.exponent)
        numerator = (self.numerator << (k - self.exponent)) + (
            other.numerator << (k - other.exponent)
        )
        return Dyadic(numerator, k)

    __radd__ = __add__

    def __neg__(self) -> "Dyadic":
        return Dyadic(-self.numerator, self.exponent)

    def __sub__(self, other: Union["Dyadic", int]) -> "Dyadic":
        if isinstance(other, int):
            other = Dyadic(other, 0)
        if not isinstance(other, Dyadic):
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: object) -> "Dyadic":
        if isinstance(other, int):
            return Dyadic(other, 0) - self
        return NotImplemented

    def __mul__(self, other: Union["Dyadic", int]) -> "Dyadic":
        if isinstance(other, int):
            other = Dyadic(other, 0)
        if not isinstance(other, Dyadic):
            return NotImplemented
        return Dyadic(self.numerator * other.numerator, self.exponent + other.exponent)

    __rmul__ = __mul__

    def exact_divide(self, divisor: "Dyadic") -> "Dyadic":
        """Exact division inside ``D``; only divisions by ``odd * 2^k``
        with the odd part dividing our numerator succeed."""
        if divisor.is_zero():
            raise ZeroDivisionRingError("division by zero in D")
        if self.is_zero():
            return Dyadic.zero()
        # Powers of two in the divisor are units of D; only the odd part
        # of its numerator must divide ours exactly.
        odd_part = divisor.numerator
        two_adic = 0
        while odd_part % 2 == 0:
            odd_part //= 2
            two_adic += 1
        quotient, remainder = divmod(self.numerator, odd_part)
        if remainder:
            raise InexactDivisionError(f"{self} is not divisible by {divisor} in D")
        return Dyadic(quotient, self.exponent - divisor.exponent + two_adic)

    def __pow__(self, exponent: int) -> "Dyadic":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("exponent must be a non-negative integer")
        return Dyadic(self.numerator**exponent, self.exponent * exponent)

    # -- evaluation -----------------------------------------------------------

    def as_fraction(self) -> Fraction:
        return Fraction(self.numerator, 1 << self.exponent)

    def to_float(self) -> float:
        return self.numerator / (1 << self.exponent)

    def __repr__(self) -> str:
        return f"Dyadic({self.numerator}, {self.exponent})"

    def __str__(self) -> str:
        if self.exponent == 0:
            return str(self.numerator)
        return f"{self.numerator}/2^{self.exponent}"
