r"""The cyclotomic field :math:`\mathbb{Q}[\omega]` -- algebraic closure
of :math:`\mathbb{D}[\omega]` under division.

Algorithm 2 of the paper normalises QMDD nodes by *dividing* all
outgoing edge weights by the leftmost non-zero weight.  That division
generally leaves :math:`\mathbb{D}[\omega]` (odd integers have no dyadic
inverse), so the paper's first normalisation scheme "spends one
additional integer" and works in the field :math:`\mathbb{Q}[\omega]`:
every element has the unique shape

.. math::  \frac{\alpha}{e}, \qquad \alpha \in \mathbb{D}[\omega],\;
           e \in 2\mathbb{Z}+1,\; \gcd(\mathrm{content}(\alpha), e) = 1.

Internally we store ``(zeta, k, e)`` for the value
``zeta / (sqrt2**k * e)`` with

* ``zeta`` a :class:`~repro.rings.zomega.ZOmega` numerator with all
  ``sqrt2`` factors removed (Algorithm 1 canonical form),
* ``e`` an odd positive integer coprime to the numerator content.

Inverses follow the paper's recipe: for ``z`` with relative norm
``N(z) = z * conj(z) = u + v*sqrt2``,

.. math::  z^{-1} = \overline{z}\,(u - v\sqrt2)\,/\,(u^2 - 2v^2).
"""

from __future__ import annotations

from math import gcd as int_gcd  # repro-lint: allow[RL002] (integer gcd is exact)
from typing import Tuple

from repro.errors import ZeroDivisionRingError
from repro.rings.domega import DOmega
from repro.rings.zomega import ZOmega

__all__ = ["QOmega"]

_SQRT2 = 1.4142135623730951  # repro-lint: allow[RL002] (to_complex conversion boundary)


class QOmega:
    """A canonical element ``zeta / (sqrt2**k * e)`` of ``Q[omega]``.

    Immutable and hashable; the constructor canonicalises arbitrary
    integer inputs (any sign/parity of ``e``).
    """

    __slots__ = ("zeta", "k", "e", "_key", "_hash")

    def __init__(self, zeta: ZOmega, k: int = 0, e: int = 1) -> None:
        if not isinstance(zeta, ZOmega):
            raise TypeError("numerator must be a ZOmega")
        if not isinstance(k, int) or not isinstance(e, int):
            raise TypeError("k and e must be int")
        if e == 0:
            raise ZeroDivisionRingError("zero denominator in Q[omega]")
        if zeta.is_zero():
            zeta, k, e = ZOmega.zero(), 0, 1
        else:
            if e < 0:
                zeta, e = -zeta, -e
            # Fold even denominator factors into the sqrt2 exponent.
            while e % 2 == 0:
                e //= 2
                k += 2
            # Remove sqrt2 factors from the numerator (Algorithm 1).
            while zeta.divisible_by_sqrt2():
                zeta = zeta.divide_by_sqrt2()
                k -= 1
            # Reduce the odd denominator against the numerator content.
            common = int_gcd(zeta.content(), e)
            if common > 1:
                zeta = ZOmega(*(coefficient // common for coefficient in zeta.coefficients()))
                e //= common
        object.__setattr__(self, "zeta", zeta)
        object.__setattr__(self, "k", k)
        object.__setattr__(self, "e", e)
        object.__setattr__(self, "_key", zeta.coefficients() + (k, e))
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("QOmega instances are immutable")

    def __reduce__(self) -> "tuple[type, tuple[ZOmega, int, int]]":
        # Pickle via the constructor (the canonical form round-trips).
        return (type(self), (self.zeta, self.k, self.e))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls) -> "QOmega":
        return _ZERO

    @classmethod
    def one(cls) -> "QOmega":
        return _ONE

    @classmethod
    def from_int(cls, n: int) -> "QOmega":
        return cls(ZOmega.from_int(n), 0, 1)

    @classmethod
    def from_domega(cls, value: DOmega) -> "QOmega":
        """Embed a ``D[omega]`` element (denominator ``e = 1``)."""
        return cls(value.zeta, value.k, 1)

    @classmethod
    def from_rational(cls, numerator: int, denominator: int) -> "QOmega":
        return cls(ZOmega.from_int(numerator), 0, denominator)

    @classmethod
    def one_over_sqrt2(cls, power: int = 1) -> "QOmega":
        return cls(ZOmega.one(), power, 1)

    @classmethod
    def omega_power(cls, exponent: int) -> "QOmega":
        return cls(ZOmega.omega_power(exponent), 0, 1)

    @classmethod
    def imag_unit(cls) -> "QOmega":
        return cls(ZOmega.imag_unit(), 0, 1)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def key(self) -> Tuple[int, int, int, int, int, int]:
        """Canonical hashable key ``(a, b, c, d, k, e)`` (precomputed)."""
        return self._key

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = QOmega.from_int(other)
        if not isinstance(other, QOmega):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("QOmega",) + self._key)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __bool__(self) -> bool:
        return not self.zeta.is_zero()

    def is_zero(self) -> bool:
        return self.zeta.is_zero()

    def is_one(self) -> bool:
        return self.k == 0 and self.e == 1 and self.zeta.is_one()

    def is_domega(self) -> bool:
        """True iff the value lies in the subring ``D[omega]`` (``e == 1``)."""
        return self.e == 1

    def to_domega(self) -> DOmega:
        """Convert to ``D[omega]``; raises if ``e != 1``."""
        if self.e != 1:
            from repro.errors import InexactDivisionError

            raise InexactDivisionError(f"{self!r} has odd denominator {self.e}, not in D[omega]")
        return DOmega(self.zeta, self.k)

    # ------------------------------------------------------------------
    # Field arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: "QOmega") -> "QOmega":
        if isinstance(other, int):
            other = QOmega.from_int(other)
        if not isinstance(other, QOmega):
            return NotImplemented
        k = max(self.k, other.k)
        lcm = self.e * other.e // int_gcd(self.e, other.e)
        left = _scale(self.zeta, k - self.k) * (lcm // self.e)
        right = _scale(other.zeta, k - other.k) * (lcm // other.e)
        return QOmega(left + right, k, lcm)

    __radd__ = __add__

    def __neg__(self) -> "QOmega":
        return QOmega(-self.zeta, self.k, self.e)

    def __sub__(self, other: "QOmega") -> "QOmega":
        if isinstance(other, int):
            other = QOmega.from_int(other)
        if not isinstance(other, QOmega):
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: object) -> "QOmega":
        if isinstance(other, int):
            return QOmega.from_int(other) - self
        return NotImplemented

    def __mul__(self, other: "QOmega") -> "QOmega":
        if isinstance(other, int):
            return QOmega(self.zeta * other, self.k, self.e)
        if not isinstance(other, QOmega):
            return NotImplemented
        return QOmega(self.zeta * other.zeta, self.k + other.k, self.e * other.e)

    __rmul__ = __mul__

    def inverse(self) -> "QOmega":
        """The multiplicative inverse (paper, Section IV-B / Example 8)."""
        if self.is_zero():
            raise ZeroDivisionRingError("inverse of zero in Q[omega]")
        u, v = self.zeta.norm_zsqrt2()
        numerator = self.zeta.conj() * (ZOmega.from_int(u) - ZOmega.sqrt2() * v)
        euclidean = u * u - 2 * v * v  # = E(zeta) up to sign, never zero
        # 1/self = e * sqrt2**k * conj(zeta) * (u - v sqrt2) / euclidean
        return QOmega(numerator * self.e, -self.k, euclidean)

    def __truediv__(self, other: "QOmega") -> "QOmega":
        if isinstance(other, int):
            other = QOmega.from_int(other)
        if not isinstance(other, QOmega):
            return NotImplemented
        return self * other.inverse()

    def __pow__(self, exponent: int) -> "QOmega":
        if not isinstance(exponent, int):
            raise ValueError("exponent must be int")
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = _ONE
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def conj(self) -> "QOmega":
        """Complex conjugation."""
        return QOmega(self.zeta.conj(), self.k, self.e)

    def abs_squared(self) -> "QOmega":
        """``|alpha|^2`` as a real ``Q[omega]`` element."""
        return self * self.conj()

    # ------------------------------------------------------------------
    # Evaluation and metrics
    # ------------------------------------------------------------------

    def to_complex(self) -> complex:
        """Evaluate as a ``complex`` double (display and metrics only).

        For very large coefficients the naive float conversion can
        overflow, so the numerator and the scale are combined through
        integer ratios before the final float step.
        """
        a, b, c, d = self.zeta.coefficients()
        # value = [d + (c-a)/sqrt2] + i[b + (c+a)/sqrt2], all over sqrt2^k e
        magnitude = max(abs(a), abs(b), abs(c), abs(d), 1)
        if magnitude.bit_length() > 900 or abs(self.k) > 1800 or self.e.bit_length() > 900:
            return self._to_complex_scaled()
        inv = 1.0 / _SQRT2  # repro-lint: allow[RL002] (to_complex conversion boundary)
        re = float(d) + (float(c) - float(a)) * inv
        im = float(b) + (float(c) + float(a)) * inv
        scale = _SQRT2 ** (-self.k) / float(self.e)
        return complex(re * scale, im * scale)

    def _to_complex_scaled(self) -> complex:
        """Overflow-safe conversion using integer ratio reduction."""
        from fractions import Fraction

        a, b, c, d = self.zeta.coefficients()
        half_k, odd_k = divmod(self.k, 2)
        # denominator = 2**half_k * sqrt2**odd_k * e
        base = Fraction(1, 1)
        if half_k >= 0:
            base = Fraction(1, (1 << half_k) * self.e)
        else:
            base = Fraction(1 << (-half_k), self.e)
        sqrt_scale = _SQRT2 ** (-odd_k)
        re = (Fraction(d) * base, Fraction(c - a) * base)
        im = (Fraction(b) * base, Fraction(c + a) * base)
        real = float(re[0]) + float(re[1]) / _SQRT2
        imag = float(im[0]) + float(im[1]) / _SQRT2
        return complex(real * sqrt_scale, imag * sqrt_scale)

    def max_bit_width(self) -> int:
        """Largest bit-width over numerator coefficients and denominator.

        The evaluation harness tracks this to reproduce the paper's
        observation that the *denominators* dominate the growth under
        the Q[omega] normalisation scheme (Section V-B).
        """
        return max(self.zeta.max_bit_width(), self.e.bit_length())

    def denominator_bit_width(self) -> int:
        return self.e.bit_length()

    def __repr__(self) -> str:
        a, b, c, d = self.zeta.coefficients()
        return f"QOmega(ZOmega({a}, {b}, {c}, {d}), k={self.k}, e={self.e})"

    def __str__(self) -> str:
        text = str(self.zeta)
        if self.k or self.e != 1:
            denominator = []
            if self.k:
                denominator.append(f"sqrt2^{self.k}")
            if self.e != 1:
                denominator.append(str(self.e))
            text = f"({text}) / ({' * '.join(denominator)})"
        return text


def _scale(zeta: ZOmega, power: int) -> ZOmega:
    """Multiply by ``sqrt2**power`` (``power >= 0``)."""
    if power >= 2:
        zeta = zeta * (1 << (power // 2))
    if power % 2:
        zeta = zeta.mul_sqrt2()
    return zeta


_ZERO = QOmega(ZOmega.zero())
_ONE = QOmega(ZOmega.one())
