r"""Exact algebraic number systems for quantum decision diagrams.

The tower implemented here (paper, Section IV):

===========================  =============================================
:class:`~repro.rings.zomega.ZOmega`    cyclotomic integers ``Z[omega]``
:class:`~repro.rings.zsqrt2.ZSqrt2`    real quadratic integers ``Z[sqrt2]``
:class:`~repro.rings.dyadic.Dyadic`    dyadic fractions ``D``
:class:`~repro.rings.domega.DOmega`    dyadic cyclotomics ``D[omega]`` =
                                       entries of exact Clifford+T unitaries
:class:`~repro.rings.qomega.QOmega`    the field ``Q[omega]`` used by the
                                       inverse-based normalisation scheme
===========================  =============================================

plus Euclidean division / GCD in ``Z[omega]``
(:mod:`repro.rings.euclid`) underpinning the GCD normalisation scheme.
"""

from repro.rings.dyadic import Dyadic
from repro.rings.domega import DOmega
from repro.rings.euclid import euclidean_divmod, gcd_many, gcd_zomega
from repro.rings.qomega import QOmega
from repro.rings.zomega import ZOmega
from repro.rings.zsqrt2 import ZSqrt2, unit_reduce

__all__ = [
    "Dyadic",
    "DOmega",
    "QOmega",
    "ZOmega",
    "ZSqrt2",
    "euclidean_divmod",
    "gcd_many",
    "gcd_zomega",
    "unit_reduce",
]
