r"""Exact 2x2 matrices over :math:`\mathbb{D}[\omega]`.

Clifford+T unitaries on one qubit are exactly the 2x2 unitaries with
entries in :math:`\mathbb{D}[\omega]` (Giles/Selinger [8], as cited by
the paper).  This module makes them first-class objects: exact
multiplication, adjoints, determinants, unitarity checks and the
*smallest denominator exponent* (sde) machinery on which exact
synthesis (:mod:`repro.synth`) is built.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.errors import RingError
from repro.rings.domega import DOmega

__all__ = ["Matrix2"]


class Matrix2:
    """An immutable 2x2 matrix ``[[a, b], [c, d]]`` over ``D[omega]``."""

    __slots__ = ("a", "b", "c", "d")

    def __init__(self, a: DOmega, b: DOmega, c: DOmega, d: DOmega) -> None:
        for entry in (a, b, c, d):
            if not isinstance(entry, DOmega):
                raise TypeError("Matrix2 entries must be DOmega values")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "d", d)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Matrix2 instances are immutable")

    # -- constructors ------------------------------------------------------

    @classmethod
    def identity(cls) -> "Matrix2":
        return cls(DOmega.one(), DOmega.zero(), DOmega.zero(), DOmega.one())

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[DOmega]]) -> "Matrix2":
        (a, b), (c, d) = rows
        return cls(a, b, c, d)

    @classmethod
    def hadamard(cls) -> "Matrix2":
        s = DOmega.one_over_sqrt2()
        return cls(s, s, s, -s)

    @classmethod
    def t_gate(cls) -> "Matrix2":
        return cls(DOmega.one(), DOmega.zero(), DOmega.zero(), DOmega.omega_power(1))

    @classmethod
    def s_gate(cls) -> "Matrix2":
        return cls(DOmega.one(), DOmega.zero(), DOmega.zero(), DOmega.imag_unit())

    @classmethod
    def x_gate(cls) -> "Matrix2":
        return cls(DOmega.zero(), DOmega.one(), DOmega.one(), DOmega.zero())

    @classmethod
    def omega_phase(cls, exponent: int) -> "Matrix2":
        """The global phase matrix ``omega^exponent * I``."""
        phase = DOmega.omega_power(exponent)
        return cls(phase, DOmega.zero(), DOmega.zero(), phase)

    # -- protocol ------------------------------------------------------------

    def entries(self) -> Tuple[DOmega, DOmega, DOmega, DOmega]:
        return (self.a, self.b, self.c, self.d)

    def __iter__(self) -> Iterator[DOmega]:
        return iter(self.entries())

    def key(self) -> Tuple:
        """Canonical hashable key (entries are canonical already)."""
        return tuple(entry.key() for entry in self.entries())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matrix2):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(("Matrix2",) + self.key())

    # -- algebra -----------------------------------------------------------------

    def __matmul__(self, other: "Matrix2") -> "Matrix2":
        if not isinstance(other, Matrix2):
            return NotImplemented
        return Matrix2(
            self.a * other.a + self.b * other.c,
            self.a * other.b + self.b * other.d,
            self.c * other.a + self.d * other.c,
            self.c * other.b + self.d * other.d,
        )

    def __mul__(self, scalar: DOmega) -> "Matrix2":
        if not isinstance(scalar, DOmega):
            return NotImplemented
        return Matrix2(self.a * scalar, self.b * scalar, self.c * scalar, self.d * scalar)

    __rmul__ = __mul__

    def dagger(self) -> "Matrix2":
        """The conjugate transpose."""
        return Matrix2(self.a.conj(), self.c.conj(), self.b.conj(), self.d.conj())

    def det(self) -> DOmega:
        return self.a * self.d - self.b * self.c

    def is_unitary(self) -> bool:
        """Exact unitarity: ``U U^dagger == I`` in the ring."""
        return self @ self.dagger() == Matrix2.identity()

    def power(self, exponent: int) -> "Matrix2":
        if exponent < 0:
            raise RingError("negative matrix powers are not supported; use dagger()")
        result = Matrix2.identity()
        base = self
        while exponent:
            if exponent & 1:
                result = result @ base
            base = base @ base
            exponent >>= 1
        return result

    # -- synthesis support --------------------------------------------------------

    def column_sde(self, column: int = 0) -> int:
        """The smallest denominator exponent of one column.

        The minimal ``k >= 0`` such that ``sqrt2**k`` times the column
        lies in ``Z[omega]^2`` -- the complexity measure driven to zero
        by exact synthesis (paper [8]; our :mod:`repro.synth`).
        """
        if column == 0:
            entries = (self.a, self.c)
        elif column == 1:
            entries = (self.b, self.d)
        else:
            raise ValueError("column must be 0 or 1")
        return max(0, max(entry.k for entry in entries))

    def sde(self) -> int:
        """The matrix-level smallest denominator exponent."""
        return max(0, max(entry.k for entry in self.entries()))

    def max_bit_width(self) -> int:
        return max(entry.max_bit_width() for entry in self.entries())

    # -- evaluation -----------------------------------------------------------------

    def to_complex_tuple(self) -> Tuple[complex, complex, complex, complex]:
        return tuple(entry.to_complex() for entry in self.entries())

    def __repr__(self) -> str:
        return f"Matrix2({self.a!r}, {self.b!r}, {self.c!r}, {self.d!r})"

    def __str__(self) -> str:
        return f"[[{self.a}, {self.b}], [{self.c}, {self.d}]]"
