r"""Euclidean division and greatest common divisors in :math:`\mathbb{Z}[\omega]`.

The paper's second normalisation scheme (Algorithm 3) divides QMDD edge
weights by a *greatest common divisor*, which requires
:math:`\mathbb{Z}[\omega]` to be a Euclidean ring.  It is: the absolute
field norm ``E`` (:meth:`repro.rings.zomega.ZOmega.euclidean_norm`) is a
Euclidean function, with the quotient obtained by performing the
division in :math:`\mathbb{Q}[\omega]` and rounding each coefficient to
the nearest integer (paper, Section IV-B; the remainder then satisfies
``E(r) <= (9/16) E(z2)``).

The rounding quotient occasionally needs adjustment in corner cases, so
:func:`euclidean_divmod` falls back to scanning the 3^4 nearest integer
quotients; norm-Euclideanity of :math:`\mathbb{Q}(\zeta_8)` guarantees a
remainder with strictly smaller norm exists.
"""

from __future__ import annotations

from itertools import product
from typing import Tuple

from repro.errors import ZeroDivisionRingError
from repro.rings.zomega import ZOmega

__all__ = ["euclidean_divmod", "gcd_zomega", "gcd_many"]


def _round_ratio_half_even(numerator: int, denominator: int) -> int:
    """Round ``numerator / denominator`` (``denominator > 0``) to the
    nearest integer, ties to even -- pure integer arithmetic (the hot
    loop used to route through :class:`fractions.Fraction`, whose
    constructor runs an integer gcd per call)."""
    floor, remainder = divmod(numerator, denominator)
    doubled = remainder << 1
    if doubled > denominator:
        return floor + 1
    if doubled < denominator:
        return floor
    return floor + (floor & 1)


def _quotient_ratio(z1: ZOmega, z2: ZOmega) -> Tuple[Tuple[int, int, int, int], int]:
    """The exact coefficients of ``z1 / z2`` in ``Q[omega]`` as an
    integer coefficient quadruple over a positive common denominator."""
    u, v = z2.norm_zsqrt2()
    # (u - v*sqrt2) = v*w^3 + 0*w^2 - v*w + u
    numerator = z1 * z2.conj() * ZOmega(v, 0, -v, u)
    denominator = u * u - 2 * v * v
    if denominator < 0:
        numerator = -numerator
        denominator = -denominator
    return numerator.coefficients(), denominator


def euclidean_divmod(z1: ZOmega, z2: ZOmega) -> Tuple[ZOmega, ZOmega]:
    """Division with remainder: ``z1 = q * z2 + r`` with ``E(r) < E(z2)``.

    Raises :class:`ZeroDivisionRingError` for a zero divisor.
    """
    if z2.is_zero():
        raise ZeroDivisionRingError("Euclidean division by zero in Z[omega]")
    coefficients, denominator = _quotient_ratio(z1, z2)
    rounded = [_round_ratio_half_even(coefficient, denominator) for coefficient in coefficients]
    quotient = ZOmega(*rounded)
    remainder = z1 - quotient * z2
    bound = z2.euclidean_norm()
    if remainder.euclidean_norm() < bound:
        return (quotient, remainder)
    # Nearest-integer rounding can fail on the boundary of the fundamental
    # domain; scan the neighbouring lattice quotients (norm-Euclideanity
    # guarantees a suitable one exists).
    best: Tuple[ZOmega, ZOmega] = (quotient, remainder)
    best_norm = remainder.euclidean_norm()
    for offsets in product((-1, 0, 1), repeat=4):
        candidate = ZOmega(*(base + offset for base, offset in zip(rounded, offsets)))
        candidate_remainder = z1 - candidate * z2
        candidate_norm = candidate_remainder.euclidean_norm()
        if candidate_norm < best_norm:
            best = (candidate, candidate_remainder)
            best_norm = candidate_norm
            if best_norm < bound:
                break
    if best_norm >= bound:  # pragma: no cover - mathematically unreachable
        raise ArithmeticError(f"Euclidean step failed for {z1!r} / {z2!r}")
    return best


def gcd_zomega(z1: ZOmega, z2: ZOmega) -> ZOmega:
    """A greatest common divisor of two ``Z[omega]`` elements.

    GCDs are only defined up to multiplication by units; the caller
    (Algorithm 3's normalisation) applies its own unit-selection rules
    afterwards.  ``gcd(0, 0) = 0`` by convention.
    """
    if z1.is_zero():
        return z2
    if z2.is_zero():
        return z1
    while not z2.is_zero():
        _, remainder = euclidean_divmod(z1, z2)
        z1, z2 = z2, remainder
    return z1


def gcd_many(*elements: ZOmega) -> ZOmega:
    """Iterated GCD of any number of elements (``0`` if all are zero)."""
    result = ZOmega.zero()
    for element in elements:
        result = gcd_zomega(result, element)
        if result.is_unit():
            break
    return result
