r"""The cyclotomic integer ring :math:`\mathbb{Z}[\omega]`.

Elements are integer combinations of the powers of the primitive 8-th
root of unity :math:`\omega = e^{i\pi/4} = (1+i)/\sqrt{2}`:

.. math::  z = a\,\omega^3 + b\,\omega^2 + c\,\omega + d,
           \qquad a, b, c, d \in \mathbb{Z}.

Since :math:`\omega^4 = -1`, the powers :math:`1, \omega, \omega^2,
\omega^3` form a :math:`\mathbb{Z}`-basis, so this coefficient quadruple
is a *unique* representation.  :math:`\mathbb{Z}[\omega]` is the ring of
integers of the cyclotomic field :math:`\mathbb{Q}(\zeta_8)` and is the
integer backbone of every exact number system in this package:
:math:`\mathbb{D}[\omega]` and :math:`\mathbb{Q}[\omega]` elements carry
a :class:`ZOmega` numerator.

Useful identities (used throughout)::

    sqrt(2) = omega - omega**3        i = omega**2
    conj(omega) = -omega**3           sigma(omega) = omega**3

where ``conj`` is complex conjugation and ``sigma`` is the ring
automorphism mapping ``sqrt(2) -> -sqrt(2)``.

The *relative norm* ``z * conj(z)`` lands in :math:`\mathbb{Z}[\sqrt2]`
(see :meth:`ZOmega.norm_zsqrt2`), and the *absolute norm*
:math:`E(z) = |u^2 - 2v^2|` (for ``z*conj(z) = u + v*sqrt2``) is a
Euclidean function: :math:`\mathbb{Z}[\omega]` is norm-Euclidean, which
is what makes GCD-based edge-weight normalisation (Algorithm 3 of the
paper) possible.

.. note::
   The paper prints the Euclidean function as
   ``E(z) = |(a^2+b^2+c^2+d^2)^2 - 2*(ab+bc+cd+da)^2|``.  Direct
   computation of ``z*conj(z)`` shows the cross term is
   ``ab + bc + cd - ad`` (the last sign is negative); the printed ``+da``
   is a typo.  Example: ``z = omega**3 + 1`` has ``|z|^2 = 2 - sqrt(2)``,
   which requires ``v = -1``, not ``+1``.  We implement the corrected
   form, which is the actual field norm and is multiplicative.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import InexactDivisionError, ZeroDivisionRingError

__all__ = ["ZOmega"]


class ZOmega:
    """An element ``a*w^3 + b*w^2 + c*w + d`` of ``Z[omega]``.

    Instances are immutable and hashable; all arithmetic returns new
    objects.  Coefficients are plain Python integers and therefore have
    arbitrary precision (the GMP substitute, see DESIGN.md section 3).
    """

    __slots__ = ("a", "b", "c", "d", "_norm2")

    def __init__(self, a: int, b: int, c: int, d: int) -> None:
        if not (type(a) is int and type(b) is int and type(c) is int and type(d) is int):
            for name, value in (("a", a), ("b", b), ("c", c), ("d", d)):
                if not isinstance(value, int):
                    raise TypeError(f"coefficient {name} must be int, got {type(value).__name__}")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "d", d)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ZOmega instances are immutable")

    def __reduce__(self) -> "tuple[type, tuple[int, int, int, int]]":
        # Pickle via the constructor: the immutability guard in
        # __setattr__ rejects the default slot-restoring protocol.
        return (type(self), (self.a, self.b, self.c, self.d))

    # ------------------------------------------------------------------
    # Constructors for distinguished elements
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls) -> "ZOmega":
        """The additive identity."""
        return _ZERO

    @classmethod
    def one(cls) -> "ZOmega":
        """The multiplicative identity."""
        return _ONE

    @classmethod
    def from_int(cls, n: int) -> "ZOmega":
        """Embed a rational integer ``n`` as ``0*w^3 + 0*w^2 + 0*w + n``."""
        return cls(0, 0, 0, n)

    @classmethod
    def omega(cls) -> "ZOmega":
        """The primitive 8-th root of unity ``w = e^{i pi/4}``."""
        return _OMEGA

    @classmethod
    def imag_unit(cls) -> "ZOmega":
        """The imaginary unit ``i = w^2``."""
        return cls(0, 1, 0, 0)

    @classmethod
    def sqrt2(cls) -> "ZOmega":
        """The real number ``sqrt(2) = w - w^3``."""
        return cls(-1, 0, 1, 0)

    @classmethod
    def from_gaussian(cls, re: int, im: int) -> "ZOmega":
        """Embed the Gaussian integer ``re + i*im``."""
        return cls(0, im, 0, re)

    @classmethod
    def omega_power(cls, exponent: int) -> "ZOmega":
        """Return ``w**exponent`` for any integer exponent (``w^8 = 1``)."""
        exponent %= 8
        sign = 1 if exponent < 4 else -1
        exponent %= 4
        coeffs = [0, 0, 0, 0]
        # index 0 <-> w^3, 1 <-> w^2, 2 <-> w^1, 3 <-> w^0
        coeffs[3 - exponent] = sign
        return cls(*coeffs)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------

    def coefficients(self) -> Tuple[int, int, int, int]:
        """Return the coefficient quadruple ``(a, b, c, d)``."""
        return (self.a, self.b, self.c, self.d)

    def __iter__(self) -> Iterator[int]:
        return iter(self.coefficients())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = ZOmega.from_int(other)
        if not isinstance(other, ZOmega):
            return NotImplemented
        return self.coefficients() == other.coefficients()

    def __hash__(self) -> int:
        return hash(("ZOmega",) + self.coefficients())

    def __bool__(self) -> bool:
        return bool(self.a or self.b or self.c or self.d)

    def is_zero(self) -> bool:
        """True iff this is the additive identity."""
        return not (self.a or self.b or self.c or self.d)

    def is_one(self) -> bool:
        """True iff this is the multiplicative identity."""
        return self.coefficients() == (0, 0, 0, 1)

    def is_rational_integer(self) -> bool:
        """True iff the element lies in ``Z`` (only the constant term set)."""
        return self.a == 0 and self.b == 0 and self.c == 0

    def is_real(self) -> bool:
        """True iff the complex value is real, i.e. lies in ``Z[sqrt2]``.

        Real elements have the shape ``d + v*sqrt2 = -v*w^3 + v*w + d``,
        i.e. ``b == 0`` and ``a == -c``.
        """
        return self.b == 0 and self.a == -self.c

    # ------------------------------------------------------------------
    # Ring arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: "ZOmega") -> "ZOmega":
        if isinstance(other, int):
            other = ZOmega.from_int(other)
        if not isinstance(other, ZOmega):
            return NotImplemented
        return ZOmega(self.a + other.a, self.b + other.b, self.c + other.c, self.d + other.d)

    __radd__ = __add__

    def __neg__(self) -> "ZOmega":
        return ZOmega(-self.a, -self.b, -self.c, -self.d)

    def __sub__(self, other: "ZOmega") -> "ZOmega":
        if isinstance(other, int):
            other = ZOmega.from_int(other)
        if not isinstance(other, ZOmega):
            return NotImplemented
        return ZOmega(self.a - other.a, self.b - other.b, self.c - other.c, self.d - other.d)

    def __rsub__(self, other: object) -> "ZOmega":
        if isinstance(other, int):
            return ZOmega.from_int(other) - self
        return NotImplemented

    def __mul__(self, other: "ZOmega") -> "ZOmega":
        if isinstance(other, int):
            return ZOmega(self.a * other, self.b * other, self.c * other, self.d * other)
        if not isinstance(other, ZOmega):
            return NotImplemented
        a1, b1, c1, d1 = self.coefficients()
        a2, b2, c2, d2 = other.coefficients()
        # Convolution of the omega-power expansions reduced with w^4 = -1.
        return ZOmega(
            a1 * d2 + b1 * c2 + c1 * b2 + d1 * a2,
            b1 * d2 + c1 * c2 + d1 * b2 - a1 * a2,
            c1 * d2 + d1 * c2 - a1 * b2 - b1 * a2,
            d1 * d2 - a1 * c2 - b1 * b2 - c1 * a2,
        )

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "ZOmega":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("ZOmega exponent must be a non-negative integer")
        result = _ONE
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    # ------------------------------------------------------------------
    # Involutions and norms
    # ------------------------------------------------------------------

    def conj(self) -> "ZOmega":
        """Complex conjugation: ``w -> w^{-1} = -w^3``."""
        return ZOmega(-self.c, -self.b, -self.a, self.d)

    def sqrt2_conj(self) -> "ZOmega":
        """The Galois automorphism ``sigma`` with ``sigma(sqrt2) = -sqrt2``.

        Defined by ``w -> w^3``; fixes ``i = w^2`` up to sign bookkeeping
        (``sigma(w^2) = w^6 = -w^2`` -- note ``sigma`` maps ``i -> -i``
        composed with conjugation data; what matters here is only that
        ``sigma`` fixes ``Q`` and negates ``sqrt2``).
        """
        return ZOmega(self.c, -self.b, self.a, self.d)

    def norm_zsqrt2(self) -> Tuple[int, int]:
        """Return ``(u, v)`` with ``z * conj(z) = u + v*sqrt2``.

        ``u = a^2 + b^2 + c^2 + d^2`` and ``v = ab + bc + cd - ad``
        (corrected sign; see module docstring).  Both are non-negative
        in absolute value bounded by ``u`` since ``|z|^2 >= 0``.
        """
        cached = getattr(self, "_norm2", None)
        if cached is None:
            a, b, c, d = self.a, self.b, self.c, self.d
            cached = (a * a + b * b + c * c + d * d, a * b + b * c + c * d - a * d)
            object.__setattr__(self, "_norm2", cached)
        return cached

    def euclidean_norm(self) -> int:
        """The absolute field norm ``E(z) = |u^2 - 2 v^2|``.

        This is multiplicative (``E(xy) = E(x) E(y)``), zero only for
        ``z = 0``, and serves as the Euclidean function for division with
        remainder (paper, Section IV-B).
        """
        u, v = self.norm_zsqrt2()
        return abs(u * u - 2 * v * v)

    def is_unit(self) -> bool:
        """True iff ``z`` is invertible in ``Z[omega]`` (``E(z) == 1``)."""
        return self.euclidean_norm() == 1

    # ------------------------------------------------------------------
    # Divisibility
    # ------------------------------------------------------------------

    def divisible_by_sqrt2(self) -> bool:
        """True iff ``z / sqrt2`` stays in ``Z[omega]``.

        The constructive parity criterion of the paper's Algorithm 1:
        divisibility holds iff ``a = c (mod 2)`` and ``b = d (mod 2)``.
        Zero is (vacuously) divisible.
        """
        return (self.a - self.c) % 2 == 0 and (self.b - self.d) % 2 == 0

    def divide_by_sqrt2(self) -> "ZOmega":
        """Return ``z / sqrt2``; raises if the quotient is not integral."""
        if not self.divisible_by_sqrt2():
            raise InexactDivisionError(f"{self!r} is not divisible by sqrt2 in Z[omega]")
        a, b, c, d = self.coefficients()
        # z / sqrt2 = z * sqrt2 / 2; multiplying by sqrt2 maps
        # (a, b, c, d) -> (b - d, c + a, b + d, c - a), then halve.
        return ZOmega((b - d) // 2, (c + a) // 2, (b + d) // 2, (c - a) // 2)

    def mul_sqrt2(self) -> "ZOmega":
        """Return ``z * sqrt2`` without constructing a temporary."""
        a, b, c, d = self.coefficients()
        return ZOmega(b - d, c + a, b + d, c - a)

    def content(self) -> int:
        """The GCD of the absolute coefficient values (0 for zero)."""
        from math import gcd  # repro-lint: allow[RL002] (integer gcd is exact)

        return gcd(gcd(abs(self.a), abs(self.b)), gcd(abs(self.c), abs(self.d)))

    def exact_divide(self, divisor: "ZOmega") -> "ZOmega":
        """Exact division in ``Z[omega]``.

        Raises :class:`InexactDivisionError` when ``divisor`` does not
        divide ``self`` and :class:`ZeroDivisionRingError` on a zero
        divisor.
        """
        if divisor.is_zero():
            raise ZeroDivisionRingError("division by zero in Z[omega]")
        numerator = self * divisor.conj()
        u, v = divisor.norm_zsqrt2()
        # 1/(u + v sqrt2) = (u - v sqrt2) / (u^2 - 2 v^2)
        numerator = numerator * (ZOmega.from_int(u) - ZOmega.sqrt2() * v)
        denominator = u * u - 2 * v * v
        coeffs = []
        for coefficient in numerator.coefficients():
            quotient, remainder = divmod(coefficient, denominator)
            if remainder:
                raise InexactDivisionError(f"{self!r} is not divisible by {divisor!r} in Z[omega]")
            coeffs.append(quotient)
        return ZOmega(*coeffs)

    def divides(self, other: "ZOmega") -> bool:
        """True iff ``self`` divides ``other`` in ``Z[omega]``."""
        if self.is_zero():
            return other.is_zero()
        try:
            other.exact_divide(self)
        except InexactDivisionError:
            return False
        return True

    # ------------------------------------------------------------------
    # Numeric evaluation & display
    # ------------------------------------------------------------------

    def to_complex(self) -> complex:
        """Evaluate as a Python ``complex`` (IEEE-754 doubles).

        Bit-widths beyond the double mantissa lose precision -- use only
        for display, plotting and the accuracy *metric* (where the
        numeric side is the noisy one anyway).
        """
        inv_sqrt2 = 0.7071067811865476  # repro-lint: allow[RL002] (to_complex conversion boundary)
        # w = (1+i)/sqrt2, w^2 = i, w^3 = (-1+i)/sqrt2
        re = float(self.d) + (float(self.c) - float(self.a)) * inv_sqrt2
        im = float(self.b) + (float(self.c) + float(self.a)) * inv_sqrt2
        return complex(re, im)

    def max_bit_width(self) -> int:
        """The largest coefficient bit-width (0 for the zero element).

        Used by the evaluation harness to reproduce the paper's
        observation that GSE blows up the integer sizes (Section V-B).
        """
        return max(abs(coefficient).bit_length() for coefficient in self.coefficients())

    def __repr__(self) -> str:
        return f"ZOmega({self.a}, {self.b}, {self.c}, {self.d})"

    def __str__(self) -> str:
        terms = []
        for coefficient, symbol in zip(self.coefficients(), ("w^3", "w^2", "w", "")):
            if coefficient == 0:
                continue
            if symbol:
                prefix = {1: "", -1: "-"}.get(coefficient, f"{coefficient}*")
                terms.append(f"{prefix}{symbol}")
            else:
                terms.append(str(coefficient))
        if not terms:
            return "0"
        text = " + ".join(terms)
        return text.replace("+ -", "- ")


_ZERO = ZOmega(0, 0, 0, 0)
_ONE = ZOmega(0, 0, 0, 1)
_OMEGA = ZOmega(0, 0, 1, 0)
