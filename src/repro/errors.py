"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that
callers can catch everything raised by this package with a single
``except`` clause while still being able to distinguish the individual
failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class RingError(ReproError):
    """Base class for errors in the exact-arithmetic ring layer."""


class InexactDivisionError(RingError):
    """Raised when an exact ring division leaves the ring.

    For example dividing ``1`` by ``3`` inside ``D[omega]``: odd integers
    greater than one have no multiplicative inverse in the ring of dyadic
    cyclotomic integers (paper, Section IV-B, issue 2).
    """


class ZeroDivisionRingError(RingError):
    """Raised when dividing by the ring's zero element."""


class NonCanonicalError(RingError):
    """Raised when an internal canonical-form invariant is violated.

    This error indicates a bug in the library itself (canonicalisation is
    applied automatically by all constructors); it is surfaced as a
    distinct type so property-based tests can assert on it.
    """


class DDError(ReproError):
    """Base class for decision-diagram structural errors."""


class LevelMismatchError(DDError):
    """Raised when combining decision diagrams over different qubit counts."""


class CircuitError(ReproError):
    """Raised for malformed circuits or gate applications."""


class SimulationError(ReproError):
    """Raised when a simulation cannot proceed (e.g. collapsed state)."""


class ApproximationError(ReproError):
    """Raised when a Clifford+T approximation cannot reach the target."""
