"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that
callers can catch everything raised by this package with a single
``except`` clause while still being able to distinguish the individual
failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class RingError(ReproError):
    """Base class for errors in the exact-arithmetic ring layer."""


class InexactDivisionError(RingError):
    """Raised when an exact ring division leaves the ring.

    For example dividing ``1`` by ``3`` inside ``D[omega]``: odd integers
    greater than one have no multiplicative inverse in the ring of dyadic
    cyclotomic integers (paper, Section IV-B, issue 2).
    """


class ZeroDivisionRingError(RingError):
    """Raised when dividing by the ring's zero element."""


class NonCanonicalError(RingError):
    """Raised when an internal canonical-form invariant is violated.

    This error indicates a bug in the library itself (canonicalisation is
    applied automatically by all constructors); it is surfaced as a
    distinct type so property-based tests can assert on it.
    """


class DDError(ReproError):
    """Base class for decision-diagram structural errors."""


class SanitizerError(DDError):
    """A canonical-form invariant violation found by the DD sanitizer.

    Raised by :mod:`repro.dd.sanitizer` when a walk over a decision
    diagram (or a sample of the compute tables) finds state that breaks
    one of the invariants canonicity rests on.  The structured fields
    let tests and tooling assert on the *kind* of violation:

    ``code``
        A short stable identifier, one of
        ``level-structure``, ``zero-edge-form``, ``weight-form``,
        ``normalization``, ``shadow-node``, ``stale-memo``,
        ``amplitude-mismatch``, ``refcount``.
    ``path``
        Child indices from the root edge to the offending node
        (empty for the root itself; ``None`` for non-walk findings
        such as stale compute-table entries).
    ``node_uid``
        The uid of the offending node, when one is involved.
    """

    def __init__(
        self,
        code: str,
        message: str,
        path: "tuple[int, ...] | None" = None,
        node_uid: "int | None" = None,
    ) -> None:
        location = ""
        if path is not None:
            location = f" at path {'/'.join(map(str, path)) or '<root>'}"
        if node_uid is not None:
            location += f" (node uid {node_uid})"
        super().__init__(f"[{code}]{location}: {message}")
        self.code = code
        self.path = path
        self.node_uid = node_uid


class LevelMismatchError(DDError):
    """Raised when combining decision diagrams over different qubit counts."""


class MemoryBudgetExceeded(DDError):
    """Live DD state exceeds the configured memory budget even after GC.

    Raised by :class:`repro.dd.mem.MemoryManager` when a collection
    triggered by a :class:`~repro.dd.mem.MemoryBudget` cannot bring the
    resident node count (or approximate byte footprint) back under the
    limit -- the *live* structure itself no longer fits, so further
    collections would only thrash.  Structured fields let callers
    report precisely what overflowed:

    ``nodes`` / ``approx_bytes``
        Resident totals measured after the final collection attempt
        (``approx_bytes`` is ``None`` when no byte limit was set).
    ``max_nodes`` / ``max_bytes``
        The configured limits (``None`` when unset).
    """

    def __init__(
        self,
        message: str,
        *,
        nodes: int,
        approx_bytes: "int | None" = None,
        max_nodes: "int | None" = None,
        max_bytes: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.nodes = nodes
        self.approx_bytes = approx_bytes
        self.max_nodes = max_nodes
        self.max_bytes = max_bytes


class TelemetryError(ReproError):
    """Base class for errors in the observability layer (:mod:`repro.obs`)."""


class SnapshotMergeError(TelemetryError):
    """Raised by :func:`repro.obs.merge_snapshots` on un-mergeable input.

    Merging telemetry snapshots is only meaningful when they describe
    the *same* instruments: an empty snapshot list, snapshots whose
    instrument sets are completely disjoint (telemetry from unrelated
    subsystems), or same-name histograms with different bucket
    boundaries (their cumulative ``le`` counts are not comparable) all
    raise this error instead of silently producing a misleading merge.
    """


class BenchFormatError(TelemetryError):
    """Raised by :mod:`repro.obs.perf` for malformed ``BENCH_*.json``
    documents or an unusable baseline store (missing baseline file,
    schema-version mismatch, workload mismatch between the compared
    records)."""


class ServeError(ReproError):
    """Base class for errors raised by the persistent simulation service
    (:mod:`repro.serve`).  The two typed rejections below are the
    service's backpressure contract (see ``docs/API.md``): callers can
    catch them separately from real simulation failures and react
    (shed load, retry later, relax the deadline)."""


class QueueFull(ServeError):
    """A request was rejected because its shard's queue is at capacity.

    Raised by :meth:`repro.serve.ServiceFrontend.submit` *immediately*
    (submission never blocks): the bounded per-worker queue routed to
    by the shard router is full.  The request was not executed and had
    no side effects; counted under ``serve.rejected.queue_full``.
    """


class DeadlineExceeded(ServeError):
    """A request missed its per-request deadline.

    Raised when the deadline passes while the request is still queued
    (the worker never starts it) or when the worker-side alarm
    interrupts the simulation mid-run.  Counted under
    ``serve.rejected.deadline``.
    """


class ServiceClosed(ServeError):
    """A request was submitted to a service that is shut down (or was
    never started)."""


class ConfigError(ReproError):
    """Raised by :mod:`repro.api` for invalid configuration values.

    The facade validates eagerly (at :class:`~repro.api.SimulatorConfig`
    construction) so a bad batch specification fails before any worker
    process is spawned.
    """


class CircuitError(ReproError):
    """Raised for malformed circuits or gate applications."""


class SimulationError(ReproError):
    """Raised when a simulation cannot proceed (e.g. collapsed state)."""


class ApproximationError(ReproError):
    """Raised when a Clifford+T approximation cannot reach the target."""
