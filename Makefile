# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench figures examples clean lint lint-baseline typecheck sanitize-smoke gc-smoke batch-smoke perf-smoke serve-smoke

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Project-specific static analysis (RL001-RL014; see
# docs/STATIC_ANALYSIS.md).  Incremental (.repro_lint_cache.json) and
# parallel; fails on any non-baselined finding.
lint:
	$(PYTHON) -m tools.repro_lint src tools --jobs auto

# Deliberately re-capture the accepted-findings baseline.  Never run
# implicitly: review the resulting .repro_lint_baseline.json diff like
# code (every entry carries a justification).
lint-baseline:
	$(PYTHON) -m tools.repro_lint src tools --jobs auto --write-baseline

# mypy --strict over the canonical core plus the observability and
# batch-execution layers (config in pyproject.toml).  Skips gracefully
# when mypy is not installed (it is not a runtime or test dependency);
# CI installs it for the typecheck job.
typecheck:
	@$(PYTHON) -c "import mypy" 2>/dev/null \
	    && MYPYPATH=src $(PYTHON) -m mypy -p repro.rings -p repro.dd \
	        -p repro.obs -p repro.exec \
	    || echo "mypy not installed; skipping (pip install mypy to run locally)"

# Fast end-to-end sanitizer run: simulate under check-every-op and fail
# on any invariant violation.
sanitize-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli sanitize --algorithm grover \
	    --qubits 5 --system algebraic-gcd --mode check-every-op
	PYTHONPATH=src $(PYTHON) -m repro.cli sanitize --algorithm grover \
	    --qubits 5 --system numeric --eps 1e-12 --mode check-every-op

# End-to-end garbage-collection run under a tight node budget, with
# the sanitizer's refcount audit on the final state.  Exits non-zero on
# a MemoryBudgetExceeded or any refcount/invariant violation.
gc-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli gc --algorithm grover \
	    --qubits 8 --system algebraic-gcd --threshold 256 \
	    --max-nodes 800 --audit
	PYTHONPATH=src $(PYTHON) -m repro.cli gc --algorithm grover \
	    --qubits 8 --system numeric --eps 1e-12 --threshold 512 \
	    --max-nodes 1200 --audit

# End-to-end parallel batch run: the eps-tradeoff sweep fanned out over
# 4 worker processes, plus the determinism suite (workers=4 must be
# byte-identical to workers=1).  Exits non-zero on any job failure.
batch-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli batch --algorithm grover \
	    --qubits 5 --include-gcd --workers 4 --retries 1
	PYTHONPATH=src $(PYTHON) -m pytest tests/exec/test_batch.py -q

# Performance-observatory smoke: record fresh BENCH_*.json records for
# the small workloads, compare them against the committed baselines
# (informational -- regressions print but do not fail), and exercise a
# traced multi-process batch end-to-end.
perf-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli perf record \
	    --workloads ghz_16q,grover_5q --repeats 3 \
	    --out-dir benchmarks/results
	PYTHONPATH=src $(PYTHON) -m repro.cli perf compare \
	    --baseline-dir benchmarks/baselines \
	    --current-dir benchmarks/results --informational
	PYTHONPATH=src $(PYTHON) -m repro.cli batch --algorithm grover \
	    --qubits 5 --workers 2 \
	    --trace-out benchmarks/results/batch_trace.json

# End-to-end persistent-service run: the Grover workload through the
# warm-worker service twice per number system, with --verify comparing
# every payload against the direct run path, plus the serve test
# suite.  Exits non-zero on any mismatch, failure or rejected request.
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli serve --workers 2 \
	    --qubits 5 --verify
	PYTHONPATH=src $(PYTHON) -m pytest tests/serve -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper figure table into benchmarks/results/.
figures:
	$(PYTHON) -m pytest benchmarks/bench_fig2_gse_size.py \
	    benchmarks/bench_fig3_grover.py benchmarks/bench_fig4_bwt.py \
	    benchmarks/bench_fig5_gse.py --benchmark-only

examples:
	@for script in examples/*.py; do \
	    echo "== $$script"; $(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

clean:
	rm -rf .pytest_cache benchmarks/results .hypothesis
	rm -f .repro_lint_cache.json
	find . -name __pycache__ -type d -exec rm -rf {} +
