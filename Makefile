# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench figures examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper figure table into benchmarks/results/.
figures:
	$(PYTHON) -m pytest benchmarks/bench_fig2_gse_size.py \
	    benchmarks/bench_fig3_grover.py benchmarks/bench_fig4_bwt.py \
	    benchmarks/bench_fig5_gse.py --benchmark-only

examples:
	@for script in examples/*.py; do \
	    echo "== $$script"; $(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

clean:
	rm -rf .pytest_cache benchmarks/results .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
