"""Machine-precision error floors (paper Section V-A's closing remark).

Measures the ``eps = 0`` error floor under IEEE-754 binary64 vs
binary32 against the exact algebraic reference, demonstrating that the
floor is a property of the machine precision -- the trade-off cannot be
escaped by re-tuning, only shifted.  Report in
``benchmarks/results/precision_floor.txt``.
"""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.evalsuite.precision import precision_floor_experiment
from repro.evalsuite.reporting import format_table


def test_precision_floor(benchmark, artifact_writer):
    circuit = grover_circuit(6, 42)
    rows = benchmark.pedantic(
        lambda: precision_floor_experiment(circuit), rounds=1, iterations=1
    )
    table = format_table(
        ["precision", "final_error", "max_error", "peak_nodes"],
        [[row.precision, row.final_error, row.max_error, row.peak_nodes] for row in rows],
    )
    report = f"error floors at eps = 0 on {circuit.name}\n\n{table}"
    print("\n" + report)
    artifact_writer("precision_floor.txt", report)
    by_precision = {row.precision: row for row in rows}
    assert by_precision["single"].final_error > 1e3 * max(
        by_precision["double"].final_error, 1e-18
    )
