"""Ablation: matrix-vector vs matrix-matrix simulation (paper [25]).

The same authors' companion DATE'19 paper asks whether combining gate
matrices first (matrix-matrix products) can beat the standard one
mat-vec per gate.  This benchmark times both strategies -- plus
intermediate block sizes -- for Grover and BWT under the algebraic
representation, and asserts they agree exactly.
"""

import pytest

from repro.algorithms.bwt import bwt_circuit
from repro.algorithms.grover import grover_circuit
from repro.dd.manager import algebraic_manager
from repro.sim.simulator import Simulator

CIRCUITS = {
    "grover6": lambda: grover_circuit(6, 42),
    "bwt_d1s4": lambda: bwt_circuit(depth=1, steps=4, seed=0),
}
BLOCKS = {"mv": "vector", "mm_block4": 4, "mm_block16": 16, "mm_full": None}


@pytest.mark.parametrize("circuit_name", list(CIRCUITS))
@pytest.mark.parametrize("strategy", list(BLOCKS))
def test_strategy(benchmark, circuit_name, strategy):
    circuit = CIRCUITS[circuit_name]()

    def run():
        manager = algebraic_manager(circuit.num_qubits)
        simulator = Simulator(manager)
        if BLOCKS[strategy] == "vector":
            return simulator.run(circuit).state, manager
        return simulator.run_matrix_matrix(circuit, block_size=BLOCKS[strategy]).state, manager

    state, manager = benchmark.pedantic(run, rounds=1, iterations=1)
    # Cross-validate against the plain vector strategy.
    reference_manager = algebraic_manager(circuit.num_qubits)
    reference = Simulator(reference_manager).run(circuit).state
    assert manager.node_count(state) == reference_manager.node_count(reference)
    # The obs registry must agree with the strategy actually exercised:
    # per-gate counting on the vector path, mat_mat probes on the
    # block-combining paths.
    snapshot = manager.telemetry.metrics.snapshot()
    if BLOCKS[strategy] == "vector":
        assert snapshot["sim.gates"] == len(circuit)
    else:
        assert snapshot["dd.ct.mat_mat.hits"] + snapshot["dd.ct.mat_mat.misses"] > 0
