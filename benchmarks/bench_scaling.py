"""Scalability: DD size vs qubit count (paper conclusion / Section V).

Grover's state vector takes only two distinct values, so the exact DD
is linear in the qubit count while the ``eps = 0`` numerical DD tracks
the exponential state space -- the cleanest demonstration that the
trade-off, not the algebraic overhead, is what limits scalability.
Report in ``benchmarks/results/scaling.txt``.
"""

import pytest

from repro.evalsuite.reporting import format_table
from repro.evalsuite.scaling import grover_scaling

QUBIT_RANGE = (4, 5, 6, 7, 8)


def test_grover_scaling(benchmark, artifact_writer):
    rows = benchmark.pedantic(
        lambda: grover_scaling(qubit_range=QUBIT_RANGE), rounds=1, iterations=1
    )
    table = format_table(
        ["qubits", "gates", "algebraic_peak", "eps0_peak", "alg_sec", "eps0_sec"],
        [
            [
                row.num_qubits,
                row.num_gates,
                row.algebraic_peak,
                row.eps0_peak,
                round(row.algebraic_seconds, 3),
                round(row.eps0_seconds, 3),
            ]
            for row in rows
        ],
    )
    report = "Grover peak DD size, exact vs eps=0 floats\n\n" + table
    print("\n" + report)
    artifact_writer("scaling.txt", report)
    assert rows[-1].eps0_peak >= (1 << QUBIT_RANGE[-1]) // 4  # near-exponential
    assert all(row.algebraic_peak <= 4 * row.num_qubits for row in rows)
