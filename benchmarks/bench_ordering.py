"""Variable-order ablation: DD size under qubit relabellings.

QMDD sizes depend on the variable order.  This benchmark quantifies the
effect on entangled-register workloads (Bell-pair layouts and Simon's
two-register circuit) and shows that a static relabelling recovers the
compact order.  Report in ``benchmarks/results/ordering.txt``.
"""

import pytest

from repro.algorithms.oracles import simon_circuit
from repro.circuits.circuit import Circuit
from repro.circuits.ordering import interleaved_order, permute_qubits
from repro.dd.manager import algebraic_manager
from repro.evalsuite.reporting import format_table
from repro.sim.simulator import Simulator


def bell_layers(n, separated):
    circuit = Circuit(n, name="bells")
    pairs = n // 2
    for pair in range(pairs):
        if separated:
            circuit.h(pair).cx(pair, pairs + pair)
        else:
            circuit.h(2 * pair).cx(2 * pair, 2 * pair + 1)
    return circuit


CASES = {
    "bells_adjacent": lambda: bell_layers(10, separated=False),
    "bells_separated": lambda: bell_layers(10, separated=True),
    "simon_natural": lambda: simon_circuit(0b101, 3, seed=1),
    "simon_interleaved": lambda: permute_qubits(
        simon_circuit(0b101, 3, seed=1), interleaved_order(6)
    ),
}


@pytest.mark.parametrize("case", list(CASES))
def test_order_case(benchmark, case):
    circuit = CASES[case]()

    def run():
        manager = algebraic_manager(circuit.num_qubits)
        result = Simulator(manager).run(circuit)
        return result.node_count, result.trace.peak_node_count

    final_nodes, peak = benchmark.pedantic(run, rounds=1, iterations=1)
    assert final_nodes > 0


def test_ordering_report(benchmark, artifact_writer):
    def collect():
        rows = []
        for name, factory in CASES.items():
            circuit = factory()
            manager = algebraic_manager(circuit.num_qubits)
            result = Simulator(manager).run(circuit)
            rows.append(
                [name, circuit.num_qubits, len(circuit), result.node_count,
                 result.trace.peak_node_count]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = format_table(["case", "qubits", "gates", "final_nodes", "peak_nodes"], rows)
    report = "variable-order ablation (algebraic QMDD)\n\n" + table
    print("\n" + report)
    artifact_writer("ordering.txt", report)
    by_name = {row[0]: row for row in rows}
    # Separated Bell pairs must inflate the DD relative to adjacent ones.
    assert by_name["bells_separated"][3] > by_name["bells_adjacent"][3]
