"""Micro-benchmarks: decision-diagram primitives per number system.

Times one gate application (matrix-vector multiplication), DD addition,
gate-DD construction and node normalisation under each representation,
on states arising mid-way through a Grover run.
"""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.dd.gatebuild import build_gate_dd
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.sim.simulator import Simulator

N = 6
FACTORIES = {
    "numeric-eps0": lambda: numeric_manager(N, eps=0.0),
    "numeric-eps1e-10": lambda: numeric_manager(N, eps=1e-10),
    "algebraic-q": lambda: algebraic_manager(N),
    "algebraic-gcd": lambda: algebraic_gcd_manager(N),
}


def midway_state(manager):
    """A representative mid-Grover state under the given manager."""
    circuit = grover_circuit(N, 13, iterations=2)
    simulator = Simulator(manager)
    return simulator, simulator.run(circuit).state


@pytest.mark.parametrize("kind", list(FACTORIES))
class TestPerSystem:
    def test_mat_vec(self, benchmark, kind):
        manager = FACTORIES[kind]()
        simulator, state = midway_state(manager)
        diffusion_gate = simulator.gate_dd(grover_circuit(N, 13)[len(grover_circuit(N, 13)) - 1])
        manager.clear_caches()
        benchmark(manager.mat_vec, diffusion_gate, state)

    def test_add(self, benchmark, kind):
        manager = FACTORIES[kind]()
        _, state = midway_state(manager)
        other = manager.basis_state(13)
        manager.clear_caches()
        benchmark(manager.add, state, other)

    def test_gate_build_mcz(self, benchmark, kind):
        manager = FACTORIES[kind]()
        from repro.circuits.gates import Z

        entries = tuple(
            manager.system.from_domega(entry) for entry in Z.exact
        )
        benchmark(
            build_gate_dd, manager, entries, N - 1, list(range(N - 1))
        )

    def test_normalize_node(self, benchmark, kind):
        manager = FACTORIES[kind]()
        from repro.rings.domega import DOmega

        weights = tuple(
            manager.system.from_domega(DOmega.from_coefficients(a, b, c, d, k=2))
            for a, b, c, d in ((1, 0, 2, 1), (0, 3, -1, 2), (2, 2, 0, -1), (1, -1, 1, 1))
        )
        benchmark(manager.system.normalize, weights)


class TestWholeCircuit:
    @pytest.mark.parametrize("kind", list(FACTORIES))
    def test_grover_simulation(self, benchmark, kind):
        circuit = grover_circuit(N, 13)

        def run():
            manager = FACTORIES[kind]()
            return Simulator(manager).run(circuit).node_count

        benchmark.pedantic(run, rounds=1, iterations=1)
