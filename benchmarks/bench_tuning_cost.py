"""The hidden cost of tolerance fine-tuning (paper Sections I/III).

Times the engineer's workflow the paper criticises -- scanning tolerance
values with one full simulation per candidate until accuracy and
compactness targets are met -- against the single algebraic run that
needs no tuning at all.  Report in
``benchmarks/results/tuning_cost.txt``.
"""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.dd.manager import algebraic_manager
from repro.evalsuite.reporting import format_table
from repro.evalsuite.tuning import tune_epsilon
from repro.sim.simulator import Simulator

N = 6
MARKED = 42


def test_tuning_search(benchmark, artifact_writer):
    circuit = grover_circuit(N, MARKED)
    report = benchmark.pedantic(
        lambda: tune_epsilon(circuit, error_target=1e-8), rounds=1, iterations=1
    )
    assert report.succeeded
    rows = [
        [
            f"{trial.eps:g}",
            trial.final_error,
            trial.peak_nodes,
            round(trial.seconds, 4),
            trial.meets_accuracy and trial.meets_compactness,
        ]
        for trial in report.trials
    ]
    table = format_table(
        ["eps", "final_error", "peak_nodes", "seconds", "viable"], rows
    )
    summary = (
        f"tolerance tuning on {circuit.name}: {report.num_trials} full "
        f"simulations, {report.total_seconds:.2f} s total, "
        f"chosen eps = {report.chosen_eps:g}\n\n{table}"
    )
    print("\n" + summary)
    artifact_writer("tuning_cost.txt", summary)


def test_algebraic_needs_no_tuning(benchmark):
    """The single exact run the tuning loop competes against."""
    circuit = grover_circuit(N, MARKED)

    def run():
        return Simulator(algebraic_manager(N)).run(circuit)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.is_zero_state
