"""Overhead and memory payoff of the mark-and-sweep garbage collector.

Two claims, both asserted:

* **Overhead** -- simulating 8-qubit Grover with the collector enabled
  (node threshold 2048, weight sweep included) costs at most 1.15x the
  GC-off wall time (min-of-``REPS``, interleaved, Python gc disabled,
  fresh managers).  For the numeric eps=0 system GC is typically a net
  *win*: the swept tables stay small and lookups stay cache-friendly.
* **Peak reduction** -- on a deep repeated-gate workload (Grover at 40
  iterations, ~1.8k gates) the peak resident node count with GC is at
  least 2x smaller than the GC-off footprint (which, without GC, is
  the interned remains of the whole history), while the final state
  stays byte-identical.

``BENCH_FAST=1`` shrinks the workload for the CI smoke run.
"""

import gc
import os
import time

from repro.algorithms.grover import grover_circuit
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.dd.mem import MemoryConfig
from repro.sim.simulator import Simulator

FAST = os.environ.get("BENCH_FAST") == "1"
REPS = 1 if FAST else 5
GROVER_QUBITS = 6 if FAST else 8
DEEP_ITERATIONS = 12 if FAST else 40
GC_THRESHOLD = 512 if FAST else 2048
DEEP_THRESHOLD = 256 if FAST else 512
MAX_GC_OVERHEAD = 1.15
MIN_PEAK_REDUCTION = 2.0

SYSTEMS = {
    "numeric": lambda n: numeric_manager(n, eps=0.0),
    "algebraic-q": algebraic_manager,
    "algebraic-gcd": algebraic_gcd_manager,
}


def _timed_run(circuit, factory, gc_config):
    manager = factory(circuit.num_qubits)
    simulator = Simulator(manager, gc=gc_config)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    start = time.perf_counter()
    result = simulator.run(circuit)
    elapsed = time.perf_counter() - start
    if gc_was_enabled:
        gc.enable()
    return elapsed, manager, result


def test_gc_overhead(artifact_writer, bench_recorder):
    circuit = grover_circuit(GROVER_QUBITS, 5)
    config = MemoryConfig(threshold=GC_THRESHOLD)
    lines = [
        f"garbage-collection overhead on {circuit.name} "
        f"({circuit.num_qubits} qubits, {len(circuit)} gates; "
        f"threshold {GC_THRESHOLD}, min-of-{REPS}, interleaved, "
        f"python-gc off, fresh managers; bound: gc-on <= "
        f"{MAX_GC_OVERHEAD:.2f}x gc-off)",
        "",
    ]
    failures = []
    for name, factory in SYSTEMS.items():
        _timed_run(circuit, factory, None)  # warm-up
        samples_off, samples_on = [], []
        stats = None
        for _ in range(REPS):
            samples_off.append(_timed_run(circuit, factory, None)[0])
            elapsed, manager, _ = _timed_run(circuit, factory, config)
            samples_on.append(elapsed)
            stats = manager.memory.statistics()
        best_off, best_on = min(samples_off), min(samples_on)
        ratio = best_on / best_off
        lines.append(
            f"{name:14s} off={best_off:8.4f}s gc-on={best_on:8.4f}s "
            f"({ratio:4.2f}x)  collections={stats['collections']} "
            f"swept_nodes={stats['swept_nodes']} "
            f"peak={stats['peak_resident_nodes']}"
        )
        # Machine-readable twin (repro.obs.perf schema): gc-on timings
        # plus the collector's own statistics as counters.
        bench_recorder(
            f"gc_overhead/{name}",
            samples_on,
            {"system": name, "threshold": GC_THRESHOLD, "gc": "on"},
            {
                "collections": stats["collections"],
                "swept_nodes": stats["swept_nodes"],
                "peak_resident_nodes": stats["peak_resident_nodes"],
                "gc_off_best_seconds": best_off,
            },
        )
        if ratio > MAX_GC_OVERHEAD:
            failures.append((name, ratio))
    artifact_writer("gc_overhead.txt", "\n".join(lines))
    assert not failures, f"gc-on exceeded the {MAX_GC_OVERHEAD}x bound: {failures}"


def test_gc_peak_reduction(artifact_writer):
    deep = grover_circuit(GROVER_QUBITS, 5, iterations=DEEP_ITERATIONS)
    config = MemoryConfig(threshold=DEEP_THRESHOLD)
    lines = [
        f"peak resident nodes on the deep workload {deep.name} "
        f"({deep.num_qubits} qubits, {len(deep)} gates; threshold "
        f"{DEEP_THRESHOLD}; bound: gc-off footprint >= "
        f"{MIN_PEAK_REDUCTION:.0f}x gc-on peak, byte-identical finals)",
        "",
    ]
    failures = []
    for name, factory in SYSTEMS.items():
        _, manager_off, result_off = _timed_run(deep, factory, None)
        # Without GC nothing is ever reclaimed, so the final resident
        # count is the peak: the interned remains of the full history.
        peak_off = manager_off.memory.node_count
        _, manager_on, result_on = _timed_run(deep, factory, config)
        stats = manager_on.memory.statistics()
        peak_on = stats["peak_resident_nodes"]
        reduction = peak_off / peak_on
        identical = (
            result_on.final_amplitudes().tobytes()
            == result_off.final_amplitudes().tobytes()
        )
        lines.append(
            f"{name:14s} gc-off={peak_off:7d} nodes  gc-on peak={peak_on:6d} "
            f"({reduction:5.1f}x smaller)  collections={stats['collections']} "
            f"byte-identical={'yes' if identical else 'NO'}"
        )
        if reduction < MIN_PEAK_REDUCTION:
            failures.append((name, "reduction", reduction))
        if not identical:
            failures.append((name, "final state changed"))
    artifact_writer("gc_peak_reduction.txt", "\n".join(lines))
    assert not failures, f"gc payoff bounds violated: {failures}"
