"""Paper Fig. 5: GSE -- size, accuracy, run-time, and the bit-width
analysis of Section V-B.

The Clifford+T-compiled phase-estimation circuit (our Quipper
substitute, see DESIGN.md Section 3).  Expected shapes:

* few exploitable redundancies: the algebraic DD size stays in the
  range of the high-accuracy numeric DDs (unlike Grover/BWT);
* the algebraic *run-time* overhead grows well beyond the ~2x of the
  other benchmarks, driven by growing integer bit-widths (the report
  includes the per-gate bit-width series);
* the tolerance trade-off on the numeric side mirrors Fig. 2.
"""

import pytest

from repro.algorithms.gse import gse_circuit
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.evalsuite.experiments import fig5_gse, shape_checks
from repro.evalsuite.reporting import render_series, render_summary
from repro.sim.simulator import Simulator

SITES, BITS, WORDS = 2, 3, 4000
CONFIGS = {
    "eps=0": lambda n: numeric_manager(n, eps=0.0),
    "eps=1e-20": lambda n: numeric_manager(n, eps=1e-20),
    "eps=1e-10": lambda n: numeric_manager(n, eps=1e-10),
    "eps=1e-3": lambda n: numeric_manager(n, eps=1e-3),
    "algebraic": algebraic_manager,
}


@pytest.fixture(scope="module")
def circuit():
    return gse_circuit(num_sites=SITES, precision_bits=BITS, max_words=WORDS)


@pytest.mark.parametrize("config", list(CONFIGS))
def test_fig5c_runtime(benchmark, circuit, config):
    """Fig. 5c: one simulation per representation."""

    def run():
        manager = CONFIGS[config](circuit.num_qubits)
        return Simulator(manager).run(circuit).node_count

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig5_series_report(benchmark, artifact_writer):
    result = benchmark.pedantic(
        lambda: fig5_gse(num_sites=SITES, precision_bits=BITS, max_words=WORDS),
        rounds=1,
        iterations=1,
    )
    sections = [
        render_summary(result),
        render_series(result, "nodes", samples=12),
        render_series(result, "error", samples=12),
        render_series(result, "seconds", samples=12),
        render_series(result, "bits", samples=12),
    ]
    checks = shape_checks(result)
    sections.append(
        "shape checks: "
        + ", ".join(f"{name}={'PASS' if ok else 'FAIL'}" for name, ok in checks.items())
    )
    report = "\n\n".join(sections)
    print("\n" + report)
    artifact_writer("fig5_gse.txt", report)
    assert checks["algebraic_exact"]
    # Section V-B: the GSE bit-widths grow substantially.
    assert max(result.bit_width_series("algebraic")) > 16
