"""Verification reliability across representations (Section V-B).

Counts equivalence-checking false negatives (missed rewrite
equivalences at fine eps) and subtle false positives (sub-tolerance
deviations accepted at coarse eps) against the always-exact algebraic
checker.  Report in ``benchmarks/results/verification_study.txt``.
"""

import pytest

from repro.evalsuite.reporting import format_table
from repro.evalsuite.verification_study import verification_reliability


def test_verification_reliability(benchmark, artifact_writer):
    rows = benchmark.pedantic(
        lambda: verification_reliability(epsilons=(0.0, 1e-10, 1e-2)),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["config", "false_negatives", "false_positives", "subtle_false_positives"],
        [
            [
                row.config,
                f"{row.false_negatives}/{row.equivalent_pairs}",
                f"{row.false_positives}/{row.inequivalent_pairs}",
                "n/a (inexpressible)"
                if row.subtle_false_positives is None
                else f"{row.subtle_false_positives}/{row.inequivalent_pairs}",
            ]
            for row in rows
        ],
    )
    report = "equivalence-checking reliability per representation\n\n" + table
    print("\n" + report)
    artifact_writer("verification_study.txt", report)
    assert rows[0].is_sound_and_complete  # algebraic