"""Overhead of the telemetry layer on the simulation hot path.

The obs design promise (docs/OBSERVABILITY.md) is that metrics-only
telemetry -- the default for every manager -- is invisible: hot tables
keep plain integer counters sampled lazily by a collector, and the only
push instruments on the per-gate path are a handful of counter/gauge
updates.  This benchmark times 8-qubit Grover (min-of-``REPS``,
interleaved, GC off, fresh managers) under all three number systems in
three telemetry modes:

* ``disabled``  -- ``Telemetry.disabled()``: null instruments, no spans.
* ``metrics``   -- the default ``Telemetry()``: live registry, no spans.
* ``tracing``   -- ``Telemetry.tracing()``: spans recorded to the ring
  (reported for reference, not bounded -- it is a profiling mode).

The acceptance bound is metrics-vs-disabled <= ``MAX_METRICS_OVERHEAD``
per system.  ``BENCH_FAST=1`` shrinks the workload to a CI smoke run
(and loosens the bound: single-rep timings on shared runners are noisy).
"""

import gc
import os
import time

from repro.algorithms.grover import grover_circuit
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.obs import Telemetry
from repro.sim.simulator import Simulator

FAST = os.environ.get("BENCH_FAST") == "1"
REPS = 1 if FAST else 5
GROVER_QUBITS = 6 if FAST else 8
MAX_METRICS_OVERHEAD = 1.25 if FAST else 1.05

SYSTEMS = {
    "numeric": lambda n, telemetry: numeric_manager(n, eps=0.0, telemetry=telemetry),
    "algebraic-q": algebraic_manager,
    "algebraic-gcd": algebraic_gcd_manager,
}

MODES = {
    "disabled": Telemetry.disabled,
    "metrics": Telemetry,
    "tracing": Telemetry.tracing,
}


def _timed_run(circuit, factory, make_telemetry):
    """One cold run; returns (seconds, registry snapshot).

    The manager is *not* returned: a numeric eps=0 manager pins a large
    interned complex table (and the manager <-> registry collector is a
    reference cycle, so only the cycle collector frees it).  Retaining
    managers across runs would hand whichever mode runs first on a
    clean heap an unfair min-of-REPS; instead every run starts from a
    ``gc.collect()``-ed heap and only the (small) snapshot survives.
    """
    manager = factory(circuit.num_qubits, telemetry=make_telemetry())
    simulator = Simulator(manager)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    start = time.perf_counter()
    simulator.run(circuit)
    elapsed = time.perf_counter() - start
    if gc_was_enabled:
        gc.enable()
    return elapsed, manager.telemetry.metrics.snapshot()


def _interleaved_best(circuit, factory):
    _timed_run(circuit, factory, Telemetry)  # warm-up (imports, pyc)
    best = {mode: float("inf") for mode in MODES}
    snapshots = {}
    for _ in range(REPS):
        for mode, make_telemetry in MODES.items():
            elapsed, snapshot = _timed_run(circuit, factory, make_telemetry)
            if elapsed < best[mode]:
                best[mode], snapshots[mode] = elapsed, snapshot
    return best, snapshots


def test_metrics_overhead(artifact_writer):
    circuit = grover_circuit(GROVER_QUBITS, 5)
    lines = [
        f"telemetry overhead on {circuit.name} "
        f"({circuit.num_qubits} qubits, {len(circuit)} gates; "
        f"min-of-{REPS}, interleaved, gc off, fresh managers; "
        f"bound: metrics <= {MAX_METRICS_OVERHEAD:.2f}x disabled)",
        "",
    ]
    failures = []
    for name, factory in SYSTEMS.items():
        best, snapshots = _interleaved_best(circuit, factory)
        ratio_metrics = best["metrics"] / best["disabled"]
        ratio_tracing = best["tracing"] / best["disabled"]
        lines.append(
            f"{name:14s} disabled={best['disabled']:8.4f}s "
            f"metrics={best['metrics']:8.4f}s ({ratio_metrics:4.2f}x) "
            f"tracing={best['tracing']:8.4f}s ({ratio_tracing:4.2f}x)"
        )
        snapshot = snapshots["metrics"]
        lines.append(
            f"    metrics-mode registry: sim.gates={snapshot['sim.gates']} "
            f"dd.apply.direct={snapshot['dd.apply.direct']} "
            f"instruments+collected={len(snapshot)}"
        )
        # The registry must have counted the run it timed.
        assert snapshot["sim.gates"] == len(circuit)
        if ratio_metrics > MAX_METRICS_OVERHEAD:
            failures.append((name, ratio_metrics))
    artifact_writer("obs_overhead.txt", "\n".join(lines))
    assert not failures, (
        f"metrics-only telemetry exceeded the {MAX_METRICS_OVERHEAD}x bound: "
        f"{failures}"
    )
