"""Paper Fig. 3: Grover's algorithm -- size (a), accuracy (b), run-time (c).

One timed simulation per representation/tolerance (the run-time panel as
pytest-benchmark rows) plus a report benchmark regenerating all three
per-gate series of the figure, printed and written to
``benchmarks/results/fig3_grover.txt``.

Paper shape targets (Section V-A, 15-qubit Grover; here scaled down --
see DESIGN.md Section 3):

* eps = 0 / 1e-20: exponential node growth, largest run-time;
* eps = 1e-15 / 1e-10: compact and accurate;
* eps = 1e-5 / 1e-3: corrupted results (error O(1));
* algebraic: as compact as the best numeric, exact, ~constant-factor
  run-time overhead over the redundancy-exploiting numeric runs.
"""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.evalsuite.experiments import fig3_grover, shape_checks
from repro.evalsuite.reporting import render_series, render_summary
from repro.sim.simulator import Simulator

N = 7
MARKED = (1 << N) * 2 // 3
CONFIGS = {
    "eps=0": lambda n: numeric_manager(n, eps=0.0),
    "eps=1e-20": lambda n: numeric_manager(n, eps=1e-20),
    "eps=1e-15": lambda n: numeric_manager(n, eps=1e-15),
    "eps=1e-10": lambda n: numeric_manager(n, eps=1e-10),
    "eps=1e-5": lambda n: numeric_manager(n, eps=1e-5),
    "eps=1e-3": lambda n: numeric_manager(n, eps=1e-3),
    "algebraic": algebraic_manager,
    "algebraic-gcd": algebraic_gcd_manager,
}


@pytest.fixture(scope="module")
def circuit():
    return grover_circuit(N, MARKED)


@pytest.mark.parametrize("config", list(CONFIGS))
def test_fig3c_runtime(benchmark, circuit, config):
    """Fig. 3c: one simulation per representation (run-time panel)."""

    def run():
        manager = CONFIGS[config](N)
        return Simulator(manager).run(circuit).node_count

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig3_series_report(benchmark, artifact_writer):
    """Regenerate all three Fig. 3 panels and check the paper's shapes."""
    result = benchmark.pedantic(
        lambda: fig3_grover(num_qubits=N), rounds=1, iterations=1
    )
    sections = [
        render_summary(result),
        render_series(result, "nodes", samples=12),
        render_series(result, "error", samples=12),
        render_series(result, "seconds", samples=12),
    ]
    checks = shape_checks(result)
    sections.append(
        "shape checks: "
        + ", ".join(f"{name}={'PASS' if ok else 'FAIL'}" for name, ok in checks.items())
    )
    # Fig. 3b also shows instability *peaks* for moderate eps; report the
    # peak statistics per numeric configuration.
    from repro.evalsuite.instability import analyze_error_series

    peak_lines = ["error-peak analysis (Fig. 3b 'peaks ... indicate instability'):"]
    for config in result.configurations():
        if not config.startswith("eps="):
            continue
        analysis = analyze_error_series(result.error_series(config))
        peak_lines.append(
            f"  {config}: median={analysis.median_error:.2e} "
            f"max={analysis.max_error:.2e} peaks={analysis.num_peaks} "
            f"worst_factor={analysis.peak_factor:.1f}"
        )
    sections.append("\n".join(peak_lines))
    report = "\n\n".join(sections)
    print("\n" + report)
    artifact_writer("fig3_grover.txt", report)
    assert checks["high_accuracy_is_largest"]
    assert checks["algebraic_not_larger_than_eps0"]
    assert checks["large_eps_corrupts"]
    assert checks["algebraic_exact"]
