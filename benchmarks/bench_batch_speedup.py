"""Parallel batch engine: workers=4 vs the sequential workers=1 fallback.

The workload is the paper's eps-tradeoff sweep (Figs. 3-5 shape): one
exact algebraic job, one algebraic-gcd job and the ``DEFAULT_EPSILONS``
numeric jobs on a Grover circuit, expressed as independent
:func:`repro.evalsuite.tradeoff.tradeoff_requests` jobs and fanned out
with :func:`repro.api.run_batch`.  Each numeric job carries the exact
algebraic configuration as its ``error_reference``, so per-gate error
series are computed worker-locally and stay identical regardless of
worker count.

Two properties are measured and recorded in the committed artifact:

* **Determinism** -- every per-job payload (serialized final state,
  node count, final error, fidelity, per-gate node-count trace) from
  the ``workers=4`` run is byte-identical to the ``workers=1`` run.
  Asserted unconditionally, on any machine.
* **Speedup** -- wall-clock of the sequential run over the parallel
  run.  The >= 2x gate is asserted only when the machine actually has
  >= 4 usable cores (the CI batch-smoke runner); on smaller machines
  the measured number is still recorded, clearly labelled with the
  core count, because process fan-out cannot beat the clock without
  cores to fan out onto.

``BENCH_FAST=1`` shrinks the circuit to a CI smoke run.  The committed
artifact ``benchmarks/results/batch_speedup.txt`` records per-job
seconds for both modes, the merged fleet telemetry counters, and the
environment the numbers were taken on.
"""

import json
import os
import time

import pytest

from repro.algorithms.grover import grover_circuit
from repro.api import run_batch
from repro.evalsuite.tradeoff import DEFAULT_EPSILONS, tradeoff_requests

FAST = os.environ.get("BENCH_FAST") == "1"
GROVER_QUBITS = 5 if FAST else 8
GROVER_ITERATIONS = 2 if FAST else 6
PARALLEL_WORKERS = 4

#: Fleet counters worth recording in the artifact (see docs/API.md).
REPORTED_COUNTERS = (
    "exec.batch.jobs",
    "exec.batch.completed",
    "exec.batch.failed",
    "exec.batch.retries",
    "exec.batch.timeouts",
    "sim.gates",
)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _payload_fingerprint(result):
    """Everything that must not depend on the worker count."""
    return (
        result.label,
        result.state_payload,
        result.node_count,
        result.is_zero_state,
        result.final_error,
        result.fidelity,
        tuple(result.trace.node_counts()),
    )


def test_batch_speedup(artifact_writer):
    circuit = grover_circuit(GROVER_QUBITS, 3, iterations=GROVER_ITERATIONS)
    requests = tradeoff_requests(
        circuit, epsilons=DEFAULT_EPSILONS, include_gcd=True
    )
    cores = _usable_cores()

    start = time.perf_counter()
    sequential = run_batch(requests, workers=1)
    seq_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_batch(requests, workers=PARALLEL_WORKERS)
    par_seconds = time.perf_counter() - start

    assert sequential.ok and parallel.ok

    # Determinism: byte-identical per-job payloads, any machine.
    for seq, par in zip(sequential.results, parallel.results):
        assert _payload_fingerprint(seq) == _payload_fingerprint(par)

    speedup = seq_seconds / par_seconds if par_seconds else float("inf")

    lines = [
        "batch engine: eps-tradeoff sweep, workers=1 vs workers=%d"
        % PARALLEL_WORKERS,
        "=" * 66,
        "workload: %s (%d qubits, %d gates), %d jobs"
        % (
            circuit.name,
            circuit.num_qubits,
            len(list(circuit)),
            len(requests),
        ),
        "machine:  %d usable core(s)%s" % (cores, "  [BENCH_FAST]" if FAST else ""),
        "",
        "%-14s %12s %12s %8s" % ("job", "seq [s]", "par [s]", "nodes"),
        "-" * 50,
    ]
    for seq, par in zip(sequential.results, parallel.results):
        lines.append(
            "%-14s %12.4f %12.4f %8d"
            % (seq.label, seq.seconds, par.seconds, seq.node_count)
        )
    lines += [
        "-" * 50,
        "%-14s %12.4f %12.4f" % ("wall-clock", seq_seconds, par_seconds),
        "",
        "speedup (seq / par): %.2fx" % speedup,
        "determinism: all %d per-job payloads byte-identical" % len(requests),
        "",
        "fleet-merged telemetry (workers=%d run):" % PARALLEL_WORKERS,
    ]
    for name in REPORTED_COUNTERS:
        if name in parallel.metrics:
            lines.append("  %-22s %s" % (name, parallel.metrics[name]))
    job_hist = parallel.metrics.get("exec.job.seconds")
    if isinstance(job_hist, dict):
        lines.append(
            "  %-22s count=%d mean=%.4fs"
            % ("exec.job.seconds", job_hist["count"], job_hist["mean"])
        )
    if cores < PARALLEL_WORKERS:
        lines.append(
            "\nNOTE: only %d core(s) -- the >=2x gate applies on the "
            "4-core CI runner." % cores
        )
    artifact_writer("batch_speedup.txt", "\n".join(lines))
    artifact_writer(
        "batch_speedup.json",
        json.dumps(
            {
                "workload": circuit.name,
                "jobs": len(requests),
                "cores": cores,
                "fast": FAST,
                "seq_seconds": seq_seconds,
                "par_seconds": par_seconds,
                "speedup": speedup,
                "per_job": [
                    {
                        "label": seq.label,
                        "seq_seconds": seq.seconds,
                        "par_seconds": par.seconds,
                        "node_count": seq.node_count,
                        "final_error": seq.final_error,
                    }
                    for seq, par in zip(sequential.results, parallel.results)
                ],
                "fleet_metrics": {
                    name: parallel.metrics[name]
                    for name in REPORTED_COUNTERS
                    if name in parallel.metrics
                },
            },
            indent=2,
        ),
    )

    if cores >= PARALLEL_WORKERS and not FAST:
        assert speedup >= 2.0, (
            "expected >=2x on a %d-core machine, measured %.2fx"
            % (cores, speedup)
        )
    elif cores < PARALLEL_WORKERS:
        pytest.skip(
            "determinism verified; %d core(s) < %d workers, speedup gate "
            "needs the 4-core runner (measured %.2fx)"
            % (cores, PARALLEL_WORKERS, speedup)
        )


def test_warm_worker_vs_cold_batch(artifact_writer, bench_recorder):
    """Same-worker repeated circuit: warm tables vs a fresh stack per job.

    The persistent service (repro.serve) pins one simulator stack per
    configuration and replays requests against its hot unique/compute/
    weight tables.  This case quantifies that reuse on the batch
    engine's own workload: N identical Grover jobs through cold
    ``run_batch`` (fresh manager each) vs N ``run_with`` calls on one
    warm simulator -- asserting byte-identical payloads and recording
    the latency ratio as a ``BENCH_*.json`` twin of the txt artifact.
    """
    from repro.api import RunRequest, SimulatorConfig, run_with

    repeats = 4 if FAST else 8
    circuit = grover_circuit(GROVER_QUBITS, 3, iterations=GROVER_ITERATIONS)
    config = SimulatorConfig()
    requests = [
        RunRequest(circuit, config, label=f"job{i}") for i in range(repeats)
    ]

    start = time.perf_counter()
    cold = run_batch(requests, workers=1)
    cold_wall = time.perf_counter() - start
    assert cold.ok
    cold_per_job = cold_wall / repeats

    simulator = config.create_simulator(circuit.num_qubits)
    warm_samples = []
    warm_results = []
    for request in requests:
        start = time.perf_counter()
        warm_results.append(run_with(request, simulator, keep_state=False))
        warm_samples.append(time.perf_counter() - start)

    # Warm reuse must never change payloads (metrics/seconds excluded:
    # the warm scope accumulates across requests by design).
    for cold_result, warm_result in zip(cold.results, warm_results):
        assert _payload_fingerprint(cold_result) == _payload_fingerprint(warm_result)

    warm_median = sorted(warm_samples)[len(warm_samples) // 2]
    ratio = cold_per_job / warm_median if warm_median else float("inf")

    lines = [
        "warm worker vs cold batch: %d identical %s jobs" % (repeats, circuit.name),
        "=" * 66,
        "cold run_batch (workers=1): %.4fs wall, %.4fs per job"
        % (cold_wall, cold_per_job),
        "warm run_with (one simulator): median %.4fs, first %.4fs"
        % (warm_median, warm_samples[0]),
        "cold-per-job / warm-median: %.2fx" % ratio,
        "determinism: all %d payloads byte-identical" % repeats,
    ]
    artifact_writer("warm_vs_cold.txt", "\n".join(lines))
    bench_recorder(
        workload="warm_vs_cold_grover_%dq" % GROVER_QUBITS,
        samples=warm_samples,
        config={
            "qubits": GROVER_QUBITS,
            "iterations": GROVER_ITERATIONS,
            "repeats": repeats,
            "system": config.system,
            "fast": FAST,
        },
        counters={
            "cold_wall_seconds": cold_wall,
            "cold_per_job_seconds": cold_per_job,
            "warm_median_seconds": warm_median,
            "cold_over_warm_ratio": ratio,
        },
    )

    # Warm tables must at least halve the per-job cost (the serve
    # acceptance bar); in practice the ratio is ~10x.
    if not FAST:
        assert warm_median <= 0.5 * cold_per_job, (
            "warm median %.4fs not <= 0.5x cold per-job %.4fs"
            % (warm_median, cold_per_job)
        )
