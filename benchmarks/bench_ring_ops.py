"""Micro-benchmarks: exact ring arithmetic vs floating point.

Quantifies the per-operation cost behind the paper's Section V-B
overhead discussion: D[omega]/Q[omega] multiplication, addition, field
inversion and Z[omega] GCDs against plain complex doubles.
"""

import pytest

from repro.rings.domega import DOmega
from repro.rings.euclid import gcd_zomega
from repro.rings.qomega import QOmega
from repro.rings.zomega import ZOmega

A = DOmega.from_coefficients(3, -2, 5, 7, k=4)
B = DOmega.from_coefficients(-1, 6, 2, -3, k=2)
QA = QOmega(ZOmega(3, -2, 5, 7), 4, 9)
QB = QOmega(ZOmega(-1, 6, 2, -3), 2, 5)
CA = A.to_complex()
CB = B.to_complex()

# Wide-coefficient variants model the GSE regime (hundreds of bits).
WIDE_A = DOmega.from_coefficients(3**40, -(2**61), 5**28, 7**23, k=64)
WIDE_B = DOmega.from_coefficients(-(3**39), 2**60, -(5**27), 7**22, k=32)


class TestScalarOps:
    def test_complex_mul_baseline(self, benchmark):
        benchmark(lambda: CA * CB)

    def test_domega_mul(self, benchmark):
        benchmark(lambda: A * B)

    def test_domega_mul_wide_coefficients(self, benchmark):
        benchmark(lambda: WIDE_A * WIDE_B)

    def test_domega_add(self, benchmark):
        benchmark(lambda: A + B)

    def test_qomega_mul(self, benchmark):
        benchmark(lambda: QA * QB)

    def test_qomega_inverse(self, benchmark):
        benchmark(QA.inverse)

    def test_qomega_add(self, benchmark):
        benchmark(lambda: QA + QB)


class TestStructuralOps:
    def test_zomega_gcd(self, benchmark):
        x = ZOmega(12, -8, 20, 28)
        y = ZOmega(-4, 24, 8, -12)
        benchmark(gcd_zomega, x, y)

    def test_canonical_associate(self, benchmark):
        benchmark(A.canonical_associate)

    def test_algorithm1_canonicalisation(self, benchmark):
        zeta = ZOmega(2, 4, 2, 4).mul_sqrt2().mul_sqrt2()
        benchmark(DOmega, zeta, 7)

    def test_domega_gcd_of_four(self, benchmark):
        weights = [A, B, A * B, A + B]
        benchmark(DOmega.gcd, weights)
