"""Paper Fig. 2: QMDD size while simulating GSE, per tolerance value.

The motivating example of Section III: ``eps = 0`` keeps maximum float
precision but a large DD; ``eps = 1e-3`` collapses the state to the
zero vector ("a perfectly compact but obviously wrong representation");
intermediate values trade between the two.  Report written to
``benchmarks/results/fig2_gse_size.txt``.
"""

import pytest

from repro.evalsuite.experiments import fig2_gse_size
from repro.evalsuite.reporting import render_series, render_summary

SITES, BITS, WORDS = 2, 3, 4000


def test_fig2_report(benchmark, artifact_writer):
    result = benchmark.pedantic(
        lambda: fig2_gse_size(num_sites=SITES, precision_bits=BITS, max_words=WORDS),
        rounds=1,
        iterations=1,
    )
    sections = [
        render_summary(result),
        render_series(result, "nodes", samples=14),
    ]
    report = "\n\n".join(sections)
    print("\n" + report)
    artifact_writer("fig2_gse_size.txt", report)
    # The two extreme cases the paper highlights in bold:
    eps0_peak = result.traces["eps=0"].peak_node_count
    algebraic_peak = result.traces["algebraic"].peak_node_count
    assert algebraic_peak <= eps0_peak
    # The coarsest tolerance destroys the result: a zero-vector
    # collapse (the paper's 15+-qubit observation) or an error many
    # orders of magnitude beyond the achievable floating-point accuracy
    # (the scale-independent form of "obviously wrong").
    coarse_errors = [e for e in result.traces["eps=0.001"].errors() if e is not None]
    fine_errors = [e for e in result.traces["eps=0"].errors() if e is not None]
    corrupted = (
        result.final_zero["eps=0.001"]
        or coarse_errors[-1] > max(1e8 * max(fine_errors[-1], 1e-16), 1e-3)
    )
    assert corrupted
