"""Ablation: normalisation schemes (paper Section V-B, final paragraphs).

Compares Algorithm 2 (Q[omega] inverses) against Algorithm 3 (D[omega]
GCDs) and the numeric variants on the Grover benchmark, measuring the
quantities the paper uses to explain why Algorithm 2 wins: run-time,
fraction of trivial edge weights (>= 1/2 for Q[omega], few for GCD) and
coefficient bit-widths.  Report in
``benchmarks/results/normalization_ablation.txt``.
"""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.algorithms.gse import gse_circuit
from repro.evalsuite.ablation import run_normalization_ablation
from repro.evalsuite.reporting import format_table


def _render(rows, title):
    return f"{title}\n" + format_table(
        ["scheme", "seconds", "final_nodes", "peak_nodes", "trivial_frac", "distinct_w", "bits"],
        [
            [
                row.scheme,
                round(row.seconds, 4),
                row.final_nodes,
                row.peak_nodes,
                round(row.trivial_weight_fraction, 3),
                row.distinct_weights,
                row.max_bit_width,
            ]
            for row in rows
        ],
    )


def test_ablation_grover(benchmark, artifact_writer):
    circuit = grover_circuit(6, 42)
    rows = benchmark.pedantic(
        lambda: run_normalization_ablation(circuit, include_gcd=True),
        rounds=1,
        iterations=1,
    )
    report = _render(rows, f"normalisation ablation on {circuit.name}")
    print("\n" + report)
    artifact_writer("normalization_ablation.txt", report)
    by_scheme = {row.scheme: row for row in rows}
    q_row = by_scheme["algebraic-q (Alg.2)"]
    gcd_row = by_scheme["algebraic-gcd (Alg.3)"]
    # Paper: Q[omega] keeps >= half the weights trivial; GCD fewer.
    assert q_row.trivial_weight_fraction >= 0.5
    assert gcd_row.trivial_weight_fraction <= q_row.trivial_weight_fraction
    # Both exact schemes detect identical redundancies.
    assert q_row.final_nodes == gcd_row.final_nodes


def test_ablation_gse(benchmark, artifact_writer):
    """The GSE workload, where the paper reports the GCD scheme's
    disadvantage is most pronounced."""
    circuit = gse_circuit(num_sites=2, precision_bits=2, max_words=2000)
    rows = benchmark.pedantic(
        lambda: run_normalization_ablation(circuit, include_gcd=True),
        rounds=1,
        iterations=1,
    )
    report = _render(rows, f"normalisation ablation on {circuit.name}")
    print("\n" + report)
    artifact_writer("normalization_ablation_gse.txt", report)
    by_scheme = {row.scheme: row for row in rows}
    assert (
        by_scheme["algebraic-q (Alg.2)"].trivial_weight_fraction
        >= by_scheme["algebraic-gcd (Alg.3)"].trivial_weight_fraction
    )
