"""Clifford+T budget ablation on GSE (the mechanism behind Fig. 5).

Sweeps the word-search budget of the rotation approximation and
reports, per budget: compiled gate/T counts, the overlap of the
compiled circuit with the ideal rotations, the peak integer bit-width
and the algebraic simulation time.  Report in
``benchmarks/results/approx_budget.txt``.
"""

import pytest

from repro.evalsuite.budget import approximation_budget_sweep
from repro.evalsuite.reporting import format_table


def test_budget_sweep(benchmark, artifact_writer):
    rows = benchmark.pedantic(
        lambda: approximation_budget_sweep(
            num_sites=2, precision_bits=2, budgets=(500, 2000, 8000)
        ),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["max_words", "gates", "t_count", "overlap", "max_bits", "alg_sec"],
        [
            [
                row.max_words,
                row.gate_count,
                row.t_count,
                round(row.overlap_with_ideal, 4),
                row.max_bit_width,
                round(row.algebraic_seconds, 3),
            ]
            for row in rows
        ],
    )
    report = "Clifford+T budget vs algebraic GSE overhead\n\n" + table
    print("\n" + report)
    artifact_writer("approx_budget.txt", report)
    assert all(row.max_bit_width > 8 for row in rows)
