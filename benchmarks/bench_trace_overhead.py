"""Cost of distributed tracing on the batch engine.

Two claims, both asserted:

* **Overhead** -- running the paper's 8-qubit Grover benchmark through
  :func:`repro.api.run_batch` with a tracing coordinator scope (every
  job records ``exec.job``/``sim.gate``/``dd.apply.direct`` spans,
  ships them home and the coordinator re-parents them under
  ``exec.batch``) costs at most ``MAX_TRACE_OVERHEAD`` x the
  metrics-only wall time (min-of-``REPS``, interleaved, Python gc
  disabled).  The measured ratio is recorded in the artifact and in
  ``docs/OBSERVABILITY.md``.
* **Byte identity** -- the serialized final-state payload of the traced
  run equals the untraced run's exactly: trace propagation never
  touches simulation state.

``BENCH_FAST=1`` shrinks the workload for the CI smoke run (and
loosens the bound: fixed per-batch costs weigh more on a small
circuit).
"""

import gc
import os
import time

from repro.api import RunRequest, SimulatorConfig, run_batch
from repro.algorithms.grover import grover_circuit
from repro.obs import Telemetry

FAST = os.environ.get("BENCH_FAST") == "1"
REPS = 3 if FAST else 5
GROVER_QUBITS = 5 if FAST else 8
MAX_TRACE_OVERHEAD = 1.25 if FAST else 1.05


def _timed_batch(requests, tracing):
    telemetry = Telemetry.tracing() if tracing else Telemetry()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    start = time.perf_counter()
    batch = run_batch(requests, workers=1, telemetry=telemetry)
    elapsed = time.perf_counter() - start
    if gc_was_enabled:
        gc.enable()
    assert batch.ok, batch.failures
    return elapsed, batch


def test_traced_batch_overhead(artifact_writer, bench_recorder):
    circuit = grover_circuit(GROVER_QUBITS, 5)
    config = SimulatorConfig(system="algebraic-gcd")
    requests = [RunRequest(circuit, config=config)]

    _timed_batch(requests, False)  # warm-up
    samples_plain, samples_traced = [], []
    traced_batch = None
    for _ in range(REPS):
        samples_plain.append(_timed_batch(requests, False)[0])
        elapsed, traced_batch = _timed_batch(requests, True)
        samples_traced.append(elapsed)
    best_plain, best_traced = min(samples_plain), min(samples_traced)
    ratio = best_traced / best_plain

    # Trace propagation must be invisible to the simulation itself.
    _, plain_batch = _timed_batch(requests, False)
    identical = (
        plain_batch.results[0].state_payload
        == traced_batch.results[0].state_payload
    )

    span_count = traced_batch.metrics.get("exec.batch.trace.spans", 0)
    report = "\n".join(
        [
            f"distributed-tracing overhead on {circuit.name} "
            f"({circuit.num_qubits} qubits, {len(circuit)} gates; "
            f"run_batch workers=1, min-of-{REPS}, interleaved, "
            f"python-gc off; bound: traced <= "
            f"{MAX_TRACE_OVERHEAD:.2f}x metrics-only)",
            "",
            f"metrics-only={best_plain:8.4f}s  metrics+spans="
            f"{best_traced:8.4f}s  ({ratio:4.2f}x)  "
            f"spans_adopted={span_count:.0f}  "
            f"byte-identical={'yes' if identical else 'NO'}",
        ]
    )
    artifact_writer("trace_overhead.txt", report)
    bench_recorder(
        f"trace_overhead/grover_{GROVER_QUBITS}q",
        samples_traced,
        {"system": config.system, "workers": 1, "tracing": "on"},
        {
            "metrics_only_best_seconds": best_plain,
            "spans_adopted": span_count,
        },
    )
    assert identical, "traced batch changed the simulation result"
    assert ratio <= MAX_TRACE_OVERHEAD, (
        f"tracing overhead {ratio:.2f}x exceeds {MAX_TRACE_OVERHEAD}x"
    )
