"""Old path vs new path: direct apply kernels against gate-DD mat_vec.

The "new path" is the :mod:`repro.dd.apply` kernel (gates applied by
recursing the vector DD directly); the "old path" is the previous
pipeline, still available as ``Simulator(use_apply_kernel=False)``:
build a matrix DD per gate with ``build_gate_dd`` and multiply with
``mat_vec``.  Both paths are timed interleaved (min-of-``REPS``, GC
off, fresh managers) on the paper's workloads -- 8-qubit Grover and
the Clifford+T-compiled GSE circuit -- under all three number
systems, and the final states are verified byte-identical
(``edges_equal`` on a shared manager, i.e. pointer-equal canonical
node plus equal weight key).

Note the in-tree old path is *flattered* by this PR: it shares the
interned weight arithmetic, scale-invariant normalisation and
compute-table hygiene that landed alongside the kernel.  Set
``BENCH_SEED_SRC=/path/to/pre-PR/src-tree`` to additionally time the
true pre-PR baseline in a subprocess (the committed artifact records
those numbers).  ``BENCH_FAST=1`` shrinks the workloads and rep count
to a CI smoke run.
"""

import gc
import os
import subprocess
import sys
import time

import pytest

from repro.algorithms.grover import grover_circuit
from repro.algorithms.gse import gse_circuit
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.evalsuite.reporting import hit_rate_rows
from repro.sim.simulator import Simulator

FAST = os.environ.get("BENCH_FAST") == "1"
SEED_SRC = os.environ.get("BENCH_SEED_SRC", "")
REPS = 1 if FAST else 5
GROVER_QUBITS = 6 if FAST else 8
GSE_WORDS = 800 if FAST else 4000

SYSTEMS = {
    "numeric": numeric_manager,
    "algebraic-q": algebraic_manager,
    "algebraic-gcd": algebraic_gcd_manager,
}

#: Registry table names worth reporting as hit rates (the rest are
#: size-only).  These are the dotted names the manager's metrics
#: collector emits (see docs/OBSERVABILITY.md).
REPORTED_TABLES = (
    "dd.ct.apply",
    "dd.ct.add",
    "weights.weight_mul",
    "weights.weight_add",
    "weights.weight_normalize",
    "weights.weight_div",
    "weights.weight_assoc",
)


@pytest.fixture(scope="module")
def circuits():
    grover = grover_circuit(GROVER_QUBITS, 5)
    gse = gse_circuit(num_sites=2, precision_bits=3, max_words=GSE_WORDS)
    return {
        f"grover-{GROVER_QUBITS}q": (list(grover), grover.num_qubits),
        "gse-2site": (list(gse), gse.num_qubits),
    }


def _timed_run(operations, num_qubits, factory, use_kernel):
    """One cold simulation on a fresh manager; returns (seconds, manager)."""
    manager = factory(num_qubits)
    simulator = Simulator(manager, use_apply_kernel=use_kernel)
    state = manager.zero_state()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    start = time.perf_counter()
    for operation in operations:
        state = simulator.apply(state, operation)
    elapsed = time.perf_counter() - start
    if gc_was_enabled:
        gc.enable()
    return elapsed, manager


def _interleaved_samples(operations, num_qubits, factory):
    """Per-rep seconds for both paths, interleaved so noise hits both."""
    _timed_run(operations, num_qubits, factory, True)  # warm-up (imports, pyc)
    kernel_samples, old_samples = [], []
    kernel_best = float("inf")
    kernel_manager = None
    for _ in range(REPS):
        elapsed, manager = _timed_run(operations, num_qubits, factory, True)
        kernel_samples.append(elapsed)
        if elapsed < kernel_best:
            kernel_best, kernel_manager = elapsed, manager
        elapsed, _ = _timed_run(operations, num_qubits, factory, False)
        old_samples.append(elapsed)
    return kernel_samples, old_samples, kernel_manager


def _hit_rate_lines(manager):
    rows = {
        row[0]: row
        for row in hit_rate_rows(manager.telemetry.metrics.snapshot())
    }
    lines = []
    for name in REPORTED_TABLES:
        row = rows.get(name)
        if row is None:
            continue
        _, _, hits, misses, rate = row
        lines.append(
            f"    {name:26s} hits={hits:>8d} "
            f"misses={misses:>8d} hit-rate={rate or 0.0:6.1%}"
        )
    return lines


def _seed_baseline_times(num_qubits):
    """Time the pre-PR tree (old path only) in a subprocess, per system."""
    script = f"""
import gc, sys, time
sys.path.insert(0, {SEED_SRC!r})
from repro.algorithms.grover import grover_circuit
from repro.dd.manager import numeric_manager, algebraic_manager, algebraic_gcd_manager
from repro.sim.simulator import Simulator
ops = list(grover_circuit({num_qubits}, 5))
gc.disable()
for name, factory in [("numeric", numeric_manager), ("algebraic-q", algebraic_manager),
                      ("algebraic-gcd", algebraic_gcd_manager)]:
    def run():
        manager = factory({num_qubits})
        sim = Simulator(manager)
        state = manager.zero_state()
        t0 = time.perf_counter()
        for op in ops:
            state = sim.apply(state, op)
        return time.perf_counter() - t0
    run()
    print(name, min(run() for range_ in range(3)))
"""
    output = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, check=True
    ).stdout
    times = {}
    for line in output.splitlines():
        name, seconds = line.split()
        times[name] = float(seconds)
    return times


@pytest.mark.parametrize("kind", list(SYSTEMS))
def test_final_states_identical(circuits, kind):
    """Both paths must land on byte-identical canonical final states."""
    for label, (operations, num_qubits) in circuits.items():
        manager = SYSTEMS[kind](num_qubits)
        kernel_sim = Simulator(manager, use_apply_kernel=True)
        matrix_sim = Simulator(manager, use_apply_kernel=False)
        kernel_state = manager.zero_state()
        matrix_state = manager.zero_state()
        for operation in operations:
            kernel_state = kernel_sim.apply(kernel_state, operation)
            matrix_state = matrix_sim.apply(matrix_state, operation)
        assert manager.edges_equal(kernel_state, matrix_state), (
            f"kernel final state differs from matrix path on {label}/{kind}"
        )


def test_apply_kernel_report(benchmark, circuits, artifact_writer, bench_recorder):
    rows = []
    cache_sections = []
    grover_label = f"grover-{GROVER_QUBITS}q"
    speedups = {}

    def measure():
        for label, (operations, num_qubits) in circuits.items():
            for kind, factory in SYSTEMS.items():
                kernel_samples, old_samples, manager = _interleaved_samples(
                    operations, num_qubits, factory
                )
                kernel_best, old_best = min(kernel_samples), min(old_samples)
                speedup = old_best / kernel_best
                speedups[(label, kind)] = speedup
                rows.append(
                    f"{label:12s} {kind:14s} old={old_best:8.4f}s "
                    f"new={kernel_best:8.4f}s speedup={speedup:5.2f}x verified=yes"
                )
                cache_sections.append(
                    f"  {label}/{kind} (kernel path)\n"
                    + "\n".join(_hit_rate_lines(manager))
                )
                # Machine-readable twin of this row (repro.obs.perf
                # schema): kernel-path timings, table counters.
                snapshot = manager.telemetry.metrics.snapshot()
                bench_recorder(
                    f"apply_kernel/{label}/{kind}",
                    kernel_samples,
                    {"system": kind, "path": "kernel", "workload": label},
                    {
                        key: snapshot[key]
                        for key in (
                            "dd.apply.direct",
                            "dd.apply.delegated",
                            "dd.ct.apply.hit_rate",
                        )
                        if key in snapshot
                    },
                )
        return len(rows)

    benchmark.pedantic(measure, rounds=1, iterations=1)

    sections = [
        "apply kernel vs matrix-DD path "
        f"(min-of-{REPS}, interleaved, gc off, fresh managers; "
        "'verified' = edges_equal final states on a shared manager)",
        "\n".join(rows),
        "cache hit rates after one kernel-path simulation:\n"
        + "\n\n".join(cache_sections),
        "note: the in-tree old path shares this PR's interned weight\n"
        "arithmetic and normalisation fast paths, so the speedup above\n"
        "understates the change against the pre-PR tree (see the seed\n"
        "baseline section of the committed artifact).",
    ]

    if SEED_SRC:
        seed_times = _seed_baseline_times(GROVER_QUBITS)
        seed_lines = []
        for kind in SYSTEMS:
            kernel_time = None
            for row in rows:
                if row.startswith(f"{grover_label:12s} {kind:14s}"):
                    kernel_time = float(row.split("new=")[1].split("s")[0])
            seed_ratio = seed_times[kind] / kernel_time
            seed_lines.append(
                f"{grover_label:12s} {kind:14s} seed={seed_times[kind]:8.4f}s "
                f"new={kernel_time:8.4f}s speedup={seed_ratio:5.2f}x"
            )
            speedups[("seed", kind)] = seed_ratio
        sections.append(
            "pre-PR seed baseline (BENCH_SEED_SRC, old path only, min-of-3):\n"
            + "\n".join(seed_lines)
        )
        assert speedups[("seed", "algebraic-gcd")] >= 2.0

    report = "\n\n".join(sections)
    print("\n" + report)
    artifact_writer("apply_kernel.txt", report)
    # The kernel must win on the paper's headline workload even against
    # the flattered in-tree old path (lenient bound: timings on shared
    # CI machines are noisy).
    assert speedups[(grover_label, "algebraic-gcd")] > 1.0
