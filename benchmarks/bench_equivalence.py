"""Verification benchmark (paper Section V-B).

Times DD-based equivalence checking of a circuit against an optimised
rewriting of itself -- the design task where the paper argues exactness
matters most: the final verdict is an O(1) root comparison, exact under
the algebraic representation.
"""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.circuits.circuit import Circuit
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.verify.equivalence import check_equivalence, check_state_equivalence

N = 5


def rewritten_grover():
    """Grover with every CZ-style core rewritten via H-conjugated MCX."""
    original = grover_circuit(N, 11)
    rewritten = Circuit(N, name="grover_rewritten")
    for operation in original:
        if operation.gate.name == "z" and operation.controls:
            target = operation.target
            rewritten.h(target)
            rewritten.mcx(operation.controls, target)
            rewritten.h(target)
        else:
            rewritten.operations.append(operation)
    return original, rewritten


@pytest.mark.parametrize("system", ["algebraic", "numeric-eps1e-10"])
def test_unitary_equivalence(benchmark, system):
    original, rewritten = rewritten_grover()
    manager = (
        algebraic_manager(N) if system == "algebraic" else numeric_manager(N, eps=1e-10)
    )

    def check():
        return check_equivalence(original, rewritten, manager=manager)

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    assert result.equivalent


def test_state_equivalence_algebraic(benchmark):
    original, rewritten = rewritten_grover()

    def check():
        return check_state_equivalence(original, rewritten)

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    assert result.equivalent


def test_inequivalence_detected(benchmark):
    original, rewritten = rewritten_grover()
    rewritten.t(0)  # inject a fault

    def check():
        return check_equivalence(original, rewritten)

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    assert not result.equivalent
