"""Overhead of the DD sanitizer's ``check-on-root`` mode.

The sanitizer is meant to be cheap enough to leave on in integration
runs: ``check-on-root`` performs one full invariant check of the final
state per simulation (structural walk + memo replay sample + amplitude
cross-check) on top of the untouched per-gate hot path.  This benchmark
times 8-qubit Grover with the sanitizer off vs ``check-on-root``
(min-of-``REPS``, interleaved, GC off, fresh managers) for all three
number systems and asserts the slowdown stays within the acceptance
bound of 2x.  ``check-every-op`` is reported for reference but not
bounded -- it is a debugging mode.

``BENCH_FAST=1`` shrinks the workload for the CI smoke run.
"""

import gc
import os
import time

import pytest

from repro.algorithms.grover import grover_circuit
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.sim.simulator import Simulator

FAST = os.environ.get("BENCH_FAST") == "1"
REPS = 1 if FAST else 5
GROVER_QUBITS = 6 if FAST else 8
MAX_ROOT_OVERHEAD = 2.0

SYSTEMS = {
    "numeric": lambda n: numeric_manager(n, eps=0.0),
    "algebraic-q": algebraic_manager,
    "algebraic-gcd": algebraic_gcd_manager,
}


def _timed_run(circuit, factory, sanitize):
    manager = factory(circuit.num_qubits)
    simulator = Simulator(manager, sanitize=sanitize)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    start = time.perf_counter()
    simulator.run(circuit)
    elapsed = time.perf_counter() - start
    if gc_was_enabled:
        gc.enable()
    coverage = simulator.sanitizer.total if simulator.sanitizer else None
    return elapsed, coverage


def _interleaved_best(circuit, factory):
    _timed_run(circuit, factory, None)  # warm-up
    best = {"off": float("inf"), "root": float("inf"), "every-op": float("inf")}
    coverage = None
    for _ in range(REPS):
        best["off"] = min(best["off"], _timed_run(circuit, factory, None)[0])
        elapsed, coverage = _timed_run(circuit, factory, "check-on-root")
        best["root"] = min(best["root"], elapsed)
        best["every-op"] = min(
            best["every-op"], _timed_run(circuit, factory, "check-every-op")[0]
        )
    return best, coverage


def test_check_on_root_overhead(artifact_writer):
    circuit = grover_circuit(GROVER_QUBITS, 5)
    lines = [
        f"sanitizer overhead on {circuit.name} "
        f"({circuit.num_qubits} qubits, {len(circuit)} gates; "
        f"min-of-{REPS}, interleaved, gc off, fresh managers; "
        f"bound: check-on-root <= {MAX_ROOT_OVERHEAD:.1f}x off)",
        "",
    ]
    failures = []
    for name, factory in SYSTEMS.items():
        best, coverage = _interleaved_best(circuit, factory)
        ratio_root = best["root"] / best["off"]
        ratio_every = best["every-op"] / best["off"]
        lines.append(
            f"{name:14s} off={best['off']:8.4f}s "
            f"check-on-root={best['root']:8.4f}s ({ratio_root:4.2f}x) "
            f"check-every-op={best['every-op']:8.4f}s ({ratio_every:5.2f}x)"
        )
        lines.append(f"    coverage per run: {coverage.summary()}")
        if ratio_root > MAX_ROOT_OVERHEAD:
            failures.append((name, ratio_root))
    artifact_writer("sanitizer_overhead.txt", "\n".join(lines))
    assert not failures, (
        f"check-on-root exceeded the {MAX_ROOT_OVERHEAD}x bound: {failures}"
    )
