"""Paper Fig. 4: the Binary Welded Tree walk -- size, accuracy, run-time.

Same structure as the Grover figure: per-representation timed runs plus
a report benchmark writing the per-gate series to
``benchmarks/results/fig4_bwt.txt``.  Like the paper's BWT benchmark the
circuit is entirely Clifford (exactly representable); the expected
shapes match Fig. 3 (algebraic compact and exact with moderate
overhead).
"""

import pytest

from repro.algorithms.bwt import bwt_circuit
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.evalsuite.experiments import fig4_bwt, shape_checks
from repro.evalsuite.reporting import render_series, render_summary
from repro.sim.simulator import Simulator

DEPTH, STEPS, SEED = 2, 5, 0
CONFIGS = {
    "eps=0": lambda n: numeric_manager(n, eps=0.0),
    "eps=1e-20": lambda n: numeric_manager(n, eps=1e-20),
    "eps=1e-10": lambda n: numeric_manager(n, eps=1e-10),
    "eps=1e-3": lambda n: numeric_manager(n, eps=1e-3),
    "algebraic": algebraic_manager,
    "algebraic-gcd": algebraic_gcd_manager,
}


@pytest.fixture(scope="module")
def circuit():
    return bwt_circuit(depth=DEPTH, steps=STEPS, seed=SEED)


@pytest.mark.parametrize("config", list(CONFIGS))
def test_fig4c_runtime(benchmark, circuit, config):
    """Fig. 4c: one simulation per representation."""

    def run():
        manager = CONFIGS[config](circuit.num_qubits)
        return Simulator(manager).run(circuit).node_count

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig4_series_report(benchmark, artifact_writer):
    result = benchmark.pedantic(
        lambda: fig4_bwt(depth=DEPTH, steps=STEPS, seed=SEED), rounds=1, iterations=1
    )
    sections = [
        render_summary(result),
        render_series(result, "nodes", samples=12),
        render_series(result, "error", samples=12),
        render_series(result, "seconds", samples=12),
    ]
    checks = shape_checks(result)
    sections.append(
        "shape checks: "
        + ", ".join(f"{name}={'PASS' if ok else 'FAIL'}" for name, ok in checks.items())
    )
    report = "\n\n".join(sections)
    print("\n" + report)
    artifact_writer("fig4_bwt.txt", report)
    assert checks["algebraic_exact"]
    assert checks.get("algebraic_not_larger_than_eps0", True)
