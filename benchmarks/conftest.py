"""Shared benchmark helpers: result artifact directory and reporting."""

import os
import time

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_artifact(name: str, text: str) -> None:
    """Persist a rendered figure table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")


def write_bench_record(workload, samples, config, counters):
    """Persist one versioned ``BENCH_*.json`` record (repro.obs.perf).

    Benches keep writing their human-readable ``.txt`` artifacts; this
    adds the machine-readable twin that the ``repro-qmdd perf`` tooling
    and the CI perf-smoke job consume.
    """
    from repro.obs import perf

    record = perf.BenchRecord(
        workload=workload,
        config=dict(config),
        timing=perf.TimingStats.from_samples(list(samples)),
        counters=dict(counters),
        created_unix=time.time(),
    )
    return perf.save_record(record, RESULTS_DIR)


@pytest.fixture(scope="session")
def artifact_writer():
    return write_artifact


@pytest.fixture(scope="session")
def bench_recorder():
    return write_bench_record
