"""Shared benchmark helpers: result artifact directory and reporting."""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_artifact(name: str, text: str) -> None:
    """Persist a rendered figure table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session")
def artifact_writer():
    return write_artifact
