"""Exact-synthesis benchmarks (the constructive side of [8]).

Times single-qubit sde-reduction synthesis and multi-qubit two-level
column reduction, asserting exact ring roundtrips throughout.
"""

import random

import pytest

from repro.circuits.circuit import Circuit
from repro.rings.matrix2 import Matrix2
from repro.synth.exact import synthesize_exact, word_to_matrix
from repro.synth.multiqubit import exact_unitary_of_circuit, synthesize_unitary


def scrambled_matrix(length, seed):
    rng = random.Random(seed)
    return word_to_matrix(tuple(rng.choice("ht") for _ in range(length)))


def random_clifford_t(num_qubits, gates, seed):
    rng = random.Random(seed)
    circuit = Circuit(num_qubits)
    for _ in range(gates):
        kind = rng.randrange(6)
        qubit = rng.randrange(num_qubits)
        if kind == 0:
            circuit.h(qubit)
        elif kind == 1:
            circuit.t(qubit)
        elif kind == 2:
            circuit.s(qubit)
        elif kind == 3:
            circuit.x(qubit)
        elif kind == 4 and num_qubits > 1:
            circuit.cx(qubit, (qubit + 1) % num_qubits)
        else:
            circuit.z(qubit)
    return circuit


@pytest.mark.parametrize("length", [20, 60, 150])
def test_single_qubit_synthesis(benchmark, length):
    target = scrambled_matrix(length, seed=length)

    def run():
        return synthesize_exact(target)

    result = benchmark(run)
    assert result.to_matrix() == target


@pytest.mark.parametrize("num_qubits,gates", [(2, 40), (3, 40), (4, 30)])
def test_multi_qubit_synthesis(benchmark, num_qubits, gates):
    circuit = random_clifford_t(num_qubits, gates, seed=num_qubits)
    target = exact_unitary_of_circuit(circuit)

    def run():
        return synthesize_unitary(target, num_qubits)

    synthesised = benchmark.pedantic(run, rounds=1, iterations=1)
    assert exact_unitary_of_circuit(synthesised) == target
